//! Verifying the communication assumption.
//!
//! §4 of the paper: "As long as a sensor can send a packet to the base
//! station through multi-hop networking within a single sensing period
//! time (1 minute here) … our group detection performance analysis in this
//! paper is still valid. For this reason, we ignore the communication
//! stack in this simulation." This module checks that premise for concrete
//! deployments: it routes every sensor to a base station with GF + GPSR
//! fallback over the unit-disk graph and evaluates the latency model
//! against the sensing-period deadline.

use gbd_core::params::SystemParams;
use gbd_field::deployment::{Deployer, UniformRandom};
use gbd_geometry::point::{Aabb, Point};
use gbd_net::gf::greedy_route;
use gbd_net::gpsr::gpsr_route;
use gbd_net::graph::UnitDiskGraph;
use gbd_net::latency::{check_deadline, LatencyModel};
use gbd_stats::rng::rng_stream;
use gbd_stats::summary::Summary;

/// Outcome of checking one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCheckResult {
    /// Number of sensors checked.
    pub sensors: usize,
    /// Sensors with any route to the base station (GF or GPSR).
    pub delivered: usize,
    /// Sensors delivered by pure greedy forwarding (no perimeter mode).
    pub delivered_greedy: usize,
    /// Sensors whose delivery met the sensing-period deadline.
    pub met_deadline: usize,
    /// Hop-count summary over delivered sensors.
    pub hops: Summary,
    /// Latency summary (seconds) over delivered sensors.
    pub latency_s: Summary,
}

impl CommCheckResult {
    /// Fraction of sensors that both deliver and meet the deadline.
    pub fn deadline_fraction(&self) -> f64 {
        self.met_deadline as f64 / self.sensors.max(1) as f64
    }
}

/// Deploys `params.n_sensors()` sensors (seeded), places the base station
/// at the field center, and routes every sensor to it.
pub fn check_deployment(
    params: &SystemParams,
    comm_range: f64,
    model: &LatencyModel,
    seed: u64,
) -> CommCheckResult {
    let extent = Aabb::from_extent(params.field_width(), params.field_height());
    let mut rng = rng_stream(seed, 0);
    let mut positions = UniformRandom.deploy(params.n_sensors(), &extent, &mut rng);
    let base = Point::new(params.field_width() / 2.0, params.field_height() / 2.0);
    positions.push(base);
    let base_idx = positions.len() - 1;
    let graph = UnitDiskGraph::new(positions, comm_range);

    let mut delivered = 0;
    let mut delivered_greedy = 0;
    let mut met_deadline = 0;
    let mut hops = Summary::new();
    let mut latency_s = Summary::new();
    for src in 0..base_idx {
        let greedy = greedy_route(&graph, src, base_idx);
        let route = match &greedy {
            Ok(r) => Some(r.clone()),
            Err(_) => gpsr_route(&graph, src, base_idx, 16 * graph.len()).ok(),
        };
        let Some(route) = route else { continue };
        delivered += 1;
        if greedy.is_ok() {
            delivered_greedy += 1;
        }
        hops.push(route.hops() as f64);
        let check = check_deadline(&route, graph.positions(), model, params.period_s());
        latency_s.push(check.latency_s);
        if check.meets_deadline {
            met_deadline += 1;
        }
    }
    CommCheckResult {
        sensors: base_idx,
        delivered,
        delivered_greedy,
        met_deadline,
        hops,
        latency_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployment_meets_deadline_with_radio() {
        let params = SystemParams::paper_defaults();
        let r = check_deployment(&params, 6000.0, &LatencyModel::long_range_radio(), 1);
        assert_eq!(r.sensors, 240);
        assert!(
            r.delivered as f64 >= 0.97 * r.sensors as f64,
            "delivered {}",
            r.delivered
        );
        // Radio latency is negligible: everything delivered meets 60 s.
        assert_eq!(r.met_deadline, r.delivered);
        // Paper: "around 6 hops" across the field; mean is below that.
        assert!(r.hops.mean() < 8.0, "mean hops {}", r.hops.mean());
        assert!(r.hops.max() <= 40.0);
    }

    #[test]
    fn undersea_acoustics_are_tighter_but_mostly_ok() {
        let params = SystemParams::paper_defaults();
        let r = check_deployment(&params, 6000.0, &LatencyModel::undersea_acoustic(), 1);
        // Acoustic propagation makes the margin real but the deadline is
        // still overwhelmingly met (the paper's premise holds).
        assert!(
            r.met_deadline as f64 >= 0.9 * r.delivered as f64,
            "met {} of {}",
            r.met_deadline,
            r.delivered
        );
        assert!(
            r.latency_s.max() > 5.0,
            "acoustic latency should be non-trivial"
        );
    }

    #[test]
    fn sparse_comm_range_breaks_delivery() {
        // Halving the communication range disconnects much of the network:
        // the paper's sparse-sensing/dense-comm premise fails.
        let params = SystemParams::paper_defaults().with_n_sensors(60);
        let r = check_deployment(&params, 2500.0, &LatencyModel::long_range_radio(), 5);
        assert!(r.delivered < r.sensors, "expected some undelivered sensors");
    }

    #[test]
    fn deterministic_in_seed() {
        let params = SystemParams::paper_defaults().with_n_sensors(80);
        let a = check_deployment(&params, 6000.0, &LatencyModel::long_range_radio(), 3);
        let b = check_deployment(&params, 6000.0, &LatencyModel::long_range_radio(), 3);
        assert_eq!(a, b);
    }
}
