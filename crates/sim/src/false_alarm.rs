//! False-alarm experiments.
//!
//! The paper's analysis excludes false alarms, arguing (§2) that mixing
//! them in "only increases the probability of the real target being
//! detected", and (§1) that group based detection filters system-level
//! false alarms because noise rarely lines up along a feasible track.
//! These runners make both claims measurable.

use crate::config::SimConfig;
use crate::engine::{inject_false_alarms, run_trial_in, TrialScratch};
use crate::group_filter::{group_detects, TrackRule};
use gbd_field::deployment::{Deployer, UniformRandom};
use gbd_field::field::SensorField;
use gbd_geometry::point::Aabb;
use gbd_stats::interval::{wilson, ProportionInterval};
use gbd_stats::rng::rng_stream;

/// The track rule matching a simulation config: the target's speed as
/// `v_max`, wrapping distances when the simulation runs on a torus.
fn track_rule(config: &SimConfig) -> TrackRule {
    let params = &config.params;
    let rule = TrackRule::new(params.speed(), params.period_s(), params.sensing_range());
    match config.boundary {
        crate::config::BoundaryPolicy::Torus => {
            rule.with_wrap(params.field_width(), params.field_height())
        }
        crate::config::BoundaryPolicy::Bounded => rule,
    }
}

/// Result of target-present trials evaluated with the track filter.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredSimResult {
    /// Trials executed.
    pub trials: u64,
    /// Detections counting only true reports (the analysis criterion).
    pub detections_true_only: u64,
    /// Detections by the track filter over true + false reports (what a
    /// deployed system would report).
    pub detections_filtered: u64,
    /// 95 % Wilson interval for the filtered detection probability.
    pub confidence_filtered: ProportionInterval,
}

/// Runs target-present trials with false alarms injected and the track
/// filter applied, sequentially (use modest trial counts).
///
/// Demonstrates the §2 claim: `detections_filtered >=
/// detections_true_only`, because extra reports can only extend feasible
/// chains.
pub fn run_with_filter(config: &SimConfig) -> FilteredSimResult {
    let params = &config.params;
    let rule = track_rule(config);
    let mut detections_true_only = 0;
    let mut detections_filtered = 0;
    let mut scratch = TrialScratch::new();
    for trial in 0..config.trials {
        let out = run_trial_in(config, trial, &mut scratch);
        if out.detected(params.k()) {
            detections_true_only += 1;
        }
        if group_detects(&out.reports, &rule, params.k(), params.m_periods()) {
            detections_filtered += 1;
        }
    }
    FilteredSimResult {
        trials: config.trials,
        detections_true_only,
        detections_filtered,
        confidence_filtered: wilson(detections_filtered, config.trials, 1.96)
            .expect("trials > 0"),
    }
}

/// Result of no-target trials: the system-level false alarm rates.
#[derive(Debug, Clone, PartialEq)]
pub struct NoTargetResult {
    /// Trials executed.
    pub trials: u64,
    /// Trials where naive counting (any `k` reports in the window) would
    /// raise a system alarm.
    pub naive_alarms: u64,
    /// Trials where the track filter raises a system alarm (a feasible
    /// chain of `k` noise reports existed).
    pub filtered_alarms: u64,
    /// Mean number of node-level false alarms per trial.
    pub mean_false_reports: f64,
}

/// Runs trials with **no target**: all reports are noise. Compares the
/// naive count-based rule with the track filter — the measured version of
/// the paper's motivation for group based detection.
pub fn run_no_target(config: &SimConfig) -> NoTargetResult {
    let params = &config.params;
    let rule = track_rule(config);
    let extent = Aabb::from_extent(params.field_width(), params.field_height());
    let mut naive_alarms = 0;
    let mut filtered_alarms = 0;
    let mut total_false = 0u64;
    let mut field = SensorField::new(extent, Vec::new(), config.boundary);
    let mut reports = Vec::new();
    for trial in 0..config.trials {
        let mut rng = rng_stream(config.seed, trial);
        {
            let rng = &mut rng;
            field.rebuild_with(extent, config.boundary, |buf| {
                UniformRandom.deploy_into(params.n_sensors(), &extent, rng, buf);
            });
        }
        reports.clear();
        let injected = inject_false_alarms(
            &field,
            params.m_periods(),
            config.false_alarm_rate,
            config.false_alarm_sampler,
            &mut rng,
            &mut reports,
            config.faults.as_ref().map(|plan| (plan, trial)),
        );
        total_false += injected as u64;
        if injected >= params.k() {
            naive_alarms += 1;
        }
        if group_detects(&reports, &rule, params.k(), params.m_periods()) {
            filtered_alarms += 1;
        }
    }
    NoTargetResult {
        trials: config.trials,
        naive_alarms,
        filtered_alarms,
        mean_false_reports: total_false as f64 / config.trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::params::SystemParams;

    #[test]
    fn false_alarms_only_help_detection() {
        let cfg = SimConfig::new(SystemParams::paper_defaults().with_n_sensors(120))
            .with_trials(120)
            .with_seed(3)
            .with_false_alarm_rate(0.002);
        let r = run_with_filter(&cfg);
        assert!(r.detections_filtered >= r.detections_true_only);
    }

    #[test]
    fn filter_passes_true_tracks_without_noise() {
        // With no false alarms, the filter must agree with plain counting:
        // true reports always form a feasible chain.
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(100)
            .with_seed(9);
        let r = run_with_filter(&cfg);
        assert_eq!(r.detections_filtered, r.detections_true_only);
    }

    #[test]
    fn filter_suppresses_noise_alarms() {
        // High node-level false alarm rate: naive counting alarms on nearly
        // every trial; the track filter on far fewer.
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(60)
            .with_seed(17)
            .with_false_alarm_rate(0.002);
        let r = run_no_target(&cfg);
        // 240 sensors x 20 periods x 0.002 ≈ 9.6 false reports per trial.
        assert!(r.mean_false_reports > 5.0);
        assert!(
            r.naive_alarms > r.trials * 9 / 10,
            "naive={}",
            r.naive_alarms
        );
        assert!(r.filtered_alarms < r.naive_alarms, "filter did not help");
    }

    #[test]
    fn geometric_sampler_matches_bernoulli_no_target_means() {
        use crate::config::FalseAlarmSampler;
        // Different RNG stream layouts, same distribution: the mean
        // injected count per trial must agree closely over a campaign.
        let base = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(200)
            .with_seed(17)
            .with_false_alarm_rate(0.002);
        let bern = run_no_target(&base);
        let geom = run_no_target(
            &base
                .clone()
                .with_false_alarm_sampler(FalseAlarmSampler::GeometricSkip),
        );
        // Expected mean 240 * 20 * 0.002 = 9.6 with a per-trial sd of
        // ~3.1; over 200 trials the two means differ by ~0.3 (1 sigma).
        assert!((bern.mean_false_reports - 9.6).abs() < 1.0, "{bern:?}");
        assert!(
            (bern.mean_false_reports - geom.mean_false_reports).abs() < 1.0,
            "{} vs {}",
            bern.mean_false_reports,
            geom.mean_false_reports
        );
    }

    #[test]
    fn no_noise_no_alarms() {
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(20)
            .with_seed(1);
        let r = run_no_target(&cfg);
        assert_eq!(r.naive_alarms, 0);
        assert_eq!(r.filtered_alarms, 0);
        assert_eq!(r.mean_false_reports, 0.0);
    }
}
