//! Parallel trial execution.

use crate::config::SimConfig;
use crate::engine::{run_trial_in, TrialOutcome, TrialScratch};
use gbd_stats::interval::{wilson, ProportionInterval};
use gbd_stats::summary::Summary;
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated result of a simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Number of trials executed.
    pub trials: u64,
    /// Trials in which at least `k` true reports were generated — the
    /// paper's detection criterion.
    pub detections: u64,
    /// `detections / trials`.
    pub detection_probability: f64,
    /// 95 % Wilson interval around the detection probability.
    pub confidence: ProportionInterval,
    /// Summary of the per-trial true-report counts.
    pub report_counts: Summary,
    /// Summary of the per-trial false-alarm counts (all zero when the
    /// false-alarm rate is zero).
    pub false_alarm_counts: Summary,
    /// Summary of the per-trial counts of reports suppressed by the
    /// configured [`crate::faults::FaultPlan`] (all zero without one).
    pub dropped_report_counts: Summary,
}

/// Trial indices claimed per atomic fetch: large enough that the shared
/// counter stays cold, small enough that a skewed tail of expensive trials
/// still spreads across workers instead of idling all but one of them.
const STEAL_BLOCK: u64 = 32;

/// The per-trial facts the aggregation needs, detached from the heavy
/// [`TrialOutcome`](crate::engine::TrialOutcome) (its report list and
/// trajectory are dropped as soon as the trial finishes, so the
/// work-stealing buffer stays a few dozen bytes per trial).
#[derive(Debug, Clone, Copy)]
struct TrialCounts {
    true_reports: usize,
    false_reports: usize,
    dropped_reports: usize,
}

/// Runs `config.trials` independent trials, in parallel, and aggregates.
///
/// Results are a pure function of `config`: trial `i` uses the derived
/// stream `(seed, i)` regardless of which thread executes it, and the
/// aggregation below replays the same fixed-chunk reduction for every
/// scheduling outcome, so the result is byte-stable across runs even
/// though the *execution* order is work-stealing.
pub fn run(config: &SimConfig) -> SimResult {
    // One TrialScratch per worker thread: the field's position, index, and
    // query buffers are recycled across every trial the worker claims, so
    // the steady-state campaign allocates only each trial's report list.
    run_with(config, || {
        let mut scratch = TrialScratch::new();
        move |cfg: &SimConfig, trial: u64| run_trial_in(cfg, trial, &mut scratch)
    })
}

/// [`run`] with a caller-supplied trial function. `make_worker` is called
/// once per worker thread; the returned closure runs every trial that
/// thread claims, so it can own per-worker state (arenas, instrumentation,
/// an alternative engine). The aggregation is the same replayed
/// fixed-chunk reduction, so two workers that produce byte-identical
/// [`TrialOutcome`]s produce byte-identical [`SimResult`]s.
pub fn run_with<W, F>(config: &SimConfig, make_worker: F) -> SimResult
where
    F: Fn() -> W + Sync,
    W: FnMut(&SimConfig, u64) -> TrialOutcome,
{
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let trials = config.trials;
    let k = config.params.k();

    // Execution: workers claim fixed blocks of trial indices from a shared
    // counter. Unlike the original one-contiguous-range-per-worker split,
    // a worker that lands on cheap trials keeps claiming; total wall clock
    // tracks the sum of trial costs rather than the most expensive range.
    let counter = AtomicU64::new(0);
    let mut blocks: Vec<(u64, Vec<TrialCounts>)> = std::thread::scope(|scope| {
        let counter = &counter;
        let make_worker = &make_worker;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cfg = config.clone();
                scope.spawn(move || {
                    let mut worker = make_worker();
                    let mut mine = Vec::new();
                    loop {
                        let lo = counter.fetch_add(STEAL_BLOCK, Ordering::Relaxed);
                        if lo >= trials {
                            break;
                        }
                        let hi = (lo + STEAL_BLOCK).min(trials);
                        let counts = (lo..hi)
                            .map(|trial| {
                                let out = worker(&cfg, trial);
                                TrialCounts {
                                    true_reports: out.true_reports,
                                    false_reports: out.false_reports,
                                    dropped_reports: out.dropped_reports,
                                }
                            })
                            .collect();
                        mine.push((lo, counts));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Blocks are disjoint; sorting by start index restores trial order.
    blocks.sort_unstable_by_key(|&(lo, _)| lo);

    // Aggregation: replay the original fixed-chunk reduction — one Welford
    // summary per `div_ceil(trials, threads)`-sized range, pushed in trial
    // order, partials merged in range order. This decouples the summary
    // bits from which thread actually ran a trial: the result is identical
    // to the pre-work-stealing implementation at the same thread count.
    let chunk = trials.div_ceil(threads as u64).max(1);
    let mut ordered = blocks.iter().flat_map(|(_, counts)| counts.iter());
    let mut partials: Vec<(u64, Summary, Summary, Summary)> = Vec::new();
    for w in 0..threads as u64 {
        let lo = w * chunk;
        let hi = ((w + 1) * chunk).min(trials);
        if lo >= hi {
            break;
        }
        let mut detections = 0u64;
        let mut reports = Summary::new();
        let mut false_alarms = Summary::new();
        let mut dropped = Summary::new();
        for _ in lo..hi {
            let out = ordered.next().expect("blocks cover every trial");
            if out.true_reports >= k {
                detections += 1;
            }
            reports.push(out.true_reports as f64);
            false_alarms.push(out.false_reports as f64);
            dropped.push(out.dropped_reports as f64);
        }
        partials.push((detections, reports, false_alarms, dropped));
    }

    let mut detections = 0u64;
    let mut report_counts = Summary::new();
    let mut false_alarm_counts = Summary::new();
    let mut dropped_report_counts = Summary::new();
    for (d, r, f, x) in &partials {
        detections += d;
        report_counts.merge(r);
        false_alarm_counts.merge(f);
        dropped_report_counts.merge(x);
    }
    let confidence = wilson(detections, trials, 1.96).expect("trials > 0 by construction");
    SimResult {
        trials,
        detections,
        detection_probability: detections as f64 / trials as f64,
        confidence,
        report_counts,
        false_alarm_counts,
        dropped_report_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::params::SystemParams;

    fn small_config() -> SimConfig {
        SimConfig::new(SystemParams::paper_defaults())
            .with_trials(300)
            .with_seed(42)
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let one = run(&small_config().with_threads(1));
        let four = run(&small_config().with_threads(4));
        assert_eq!(one.detections, four.detections);
        assert_eq!(one.report_counts.count(), four.report_counts.count());
        assert_eq!(one.report_counts.min(), four.report_counts.min());
        assert_eq!(one.report_counts.max(), four.report_counts.max());
        // Merged moments differ only by floating point association order.
        assert!((one.report_counts.mean() - four.report_counts.mean()).abs() < 1e-9);
        assert!(
            (one.report_counts.sample_variance() - four.report_counts.sample_variance()).abs()
                < 1e-6
        );
    }

    #[test]
    fn work_stealing_schedule_does_not_leak_into_results() {
        // Repeated multi-threaded runs race differently over the shared
        // counter, but the replayed fixed-chunk reduction must make every
        // field — including the merged Welford moments — byte-stable.
        let cfg = small_config().with_threads(3);
        let a = run(&cfg);
        for _ in 0..3 {
            assert_eq!(a, run(&cfg));
        }
    }

    #[test]
    fn result_is_seed_deterministic() {
        let a = run(&small_config());
        let b = run(&small_config());
        assert_eq!(a, b);
        let c = run(&small_config().with_seed(43));
        assert_ne!(a.detections, c.detections);
    }

    #[test]
    fn probability_and_interval_consistent() {
        let r = run(&small_config());
        assert!(
            (r.detection_probability - r.detections as f64 / r.trials as f64).abs() < 1e-15
        );
        assert!(r.confidence.contains(r.detection_probability));
        assert_eq!(r.report_counts.count(), r.trials);
    }

    #[test]
    fn zero_pd_never_detects() {
        let cfg = SimConfig::new(SystemParams::paper_defaults().with_pd(0.0))
            .with_trials(50)
            .with_seed(1);
        let r = run(&cfg);
        assert_eq!(r.detections, 0);
        assert_eq!(r.report_counts.max(), 0.0);
    }

    #[test]
    fn faults_degrade_detection_and_are_counted() {
        use crate::faults::FaultPlan;
        let clean = run(&small_config());
        assert_eq!(clean.dropped_report_counts.max(), 0.0);
        let faulted = run(&small_config().with_faults(
            FaultPlan::new(13)
                .with_node_failure_rate(0.3)
                .with_report_drop_rate(0.2),
        ));
        assert!(faulted.dropped_report_counts.mean() > 0.0);
        assert!(
            faulted.detection_probability < clean.detection_probability,
            "faults must hurt: {} vs {}",
            faulted.detection_probability,
            clean.detection_probability
        );
        // Campaign-level determinism under faults.
        assert_eq!(
            faulted,
            run(&small_config().with_faults(
                FaultPlan::new(13)
                    .with_node_failure_rate(0.3)
                    .with_report_drop_rate(0.2),
            ))
        );
    }

    #[test]
    fn campaign_is_bit_identical_to_the_nested_grid_oracle() {
        use crate::engine::oracle_support::run_trial_oracle;
        // The CSR field, the focused rebuild, the per-worker arenas, and
        // the allocation-free query path must not change a single bit of
        // any SimResult: replay whole campaigns through the retained
        // pre-CSR engine and compare, at the paper's defaults and at
        // N = 10^4 sensors, across thread counts.
        let paper = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(64)
            .with_seed(0x1D);
        let large = SimConfig::new(SystemParams::paper_defaults().with_n_sensors(10_000))
            .with_trials(32)
            .with_seed(0x1D);
        for cfg in [paper, large] {
            for threads in [1usize, 2, 4] {
                let cfg = cfg.clone().with_threads(threads);
                let new = run(&cfg);
                let oracle = run_with(&cfg, || run_trial_oracle);
                assert_eq!(new, oracle, "threads {threads}");
                // PartialEq on f64 fields is exact, but make byte-level
                // intent explicit: the printed representation (every bit
                // of every float) matches too.
                assert_eq!(
                    format!("{new:?}"),
                    format!("{oracle:?}"),
                    "threads {threads}"
                );
            }
        }
    }

    #[test]
    fn more_sensors_more_detections() {
        let lo = run(
            &SimConfig::new(SystemParams::paper_defaults().with_n_sensors(60))
                .with_trials(400)
                .with_seed(7),
        );
        let hi = run(
            &SimConfig::new(SystemParams::paper_defaults().with_n_sensors(240))
                .with_trials(400)
                .with_seed(7),
        );
        assert!(hi.detection_probability > lo.detection_probability);
    }
}
