//! Simulation configuration.

use crate::faults::FaultPlan;
use gbd_core::params::SystemParams;
use gbd_core::CoreError;

pub use gbd_field::field::BoundaryPolicy;

/// How sensors are placed (the paper assumes uniform random; the grid
/// variants exist to measure how the analysis degrades when that
/// assumption is violated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeploymentSpec {
    /// Independent uniform placement — the paper's assumption.
    UniformRandom,
    /// Near-square grid with per-sensor jitter (fraction of the pitch, in
    /// `[0, 0.5]`; `0.0` is a perfect grid).
    Grid {
        /// Jitter half-width as a fraction of the grid pitch.
        jitter: f64,
    },
}

/// Which mobility model drives the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionSpec {
    /// Straight line at the configured constant speed (paper default).
    Straight,
    /// Random walk: heading perturbed uniformly within `±max_turn` each
    /// period (paper §4 uses `π/4`).
    RandomWalk {
        /// Maximum per-period heading change in radians.
        max_turn: f64,
    },
    /// Straight line with per-period speeds drawn uniformly from
    /// `[v_min, v_max]` (the §6 varying-speed case).
    VaryingSpeed {
        /// Lower speed bound in m/s.
        v_min: f64,
        /// Upper speed bound in m/s.
        v_max: f64,
    },
}

/// How per-sensor-period false alarms are drawn.
///
/// Both samplers target the same Bernoulli(`false_alarm_rate`) process per
/// sensor-period; they differ in cost and in how they consume the RNG
/// stream, so switching samplers changes individual trial outcomes (but
/// not the distribution — a statistical equivalence test pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FalseAlarmSampler {
    /// One coin per sensor-period: the paper-faithful scan. Default, and
    /// the sampler every recorded experiment uses.
    #[default]
    Bernoulli,
    /// Geometric skip-ahead: draws the gap to the next firing sensor-period
    /// directly, so cost scales with the number of alarms instead of
    /// `N × M`. Opt-in — it consumes the RNG stream differently, so
    /// per-trial outcomes are not bit-comparable with
    /// [`FalseAlarmSampler::Bernoulli`].
    GeometricSkip,
}

/// Full configuration of a simulation campaign.
///
/// Defaults mirror the paper's §4 setup: straight-line target, no false
/// alarms, 10 000 trials, toroidal boundary (matching the analytical
/// model's implicit assumption of full sensor density along the whole
/// track).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// System parameters (field, sensors, sensing, detection rule).
    pub params: SystemParams,
    /// Number of independent trials.
    pub trials: u64,
    /// Master seed; every result is a pure function of it.
    pub seed: u64,
    /// Border handling for sensing queries.
    pub boundary: BoundaryPolicy,
    /// Target mobility model.
    pub motion: MotionSpec,
    /// Node-level false-alarm probability per sensor per period.
    pub false_alarm_rate: f64,
    /// How false alarms are sampled (per-coin Bernoulli scan by default;
    /// geometric skip-ahead as an opt-in for large `N × M` campaigns).
    pub false_alarm_sampler: FalseAlarmSampler,
    /// Sensor placement strategy.
    pub deployment: DeploymentSpec,
    /// Probability that a sensor is awake in a given period (duty-cycled
    /// sleep scheduling, cf. the paper's §5 related work; `1.0` = always
    /// on). A sleeping sensor neither detects nor misfires.
    pub awake_probability: f64,
    /// Number of worker threads (0 = all available cores).
    pub threads: usize,
    /// Deterministic fault injection (node failures, dropped reports);
    /// `None` (the default) simulates a fault-free network.
    pub faults: Option<FaultPlan>,
}

impl SimConfig {
    /// Creates the paper-default configuration for the given parameters.
    pub fn new(params: SystemParams) -> Self {
        SimConfig {
            params,
            trials: 10_000,
            seed: 0x5EED,
            boundary: BoundaryPolicy::Torus,
            motion: MotionSpec::Straight,
            false_alarm_rate: 0.0,
            false_alarm_sampler: FalseAlarmSampler::Bernoulli,
            deployment: DeploymentSpec::UniformRandom,
            awake_probability: 1.0,
            threads: 0,
            faults: None,
        }
    }

    /// Sets the trial count, or [`CoreError::InvalidParameter`] if
    /// `trials == 0`.
    pub fn try_with_trials(mut self, trials: u64) -> Result<Self, CoreError> {
        if trials == 0 {
            return Err(CoreError::InvalidParameter {
                name: "trials",
                constraint: "need at least one trial",
            });
        }
        self.trials = trials;
        Ok(self)
    }

    /// Sets the trial count.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`; see [`SimConfig::try_with_trials`] for the
    /// fallible form.
    pub fn with_trials(self, trials: u64) -> Self {
        self.try_with_trials(trials)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the boundary policy.
    pub fn with_boundary(mut self, boundary: BoundaryPolicy) -> Self {
        self.boundary = boundary;
        self
    }

    /// Sets the mobility model.
    pub fn with_motion(mut self, motion: MotionSpec) -> Self {
        self.motion = motion;
        self
    }

    /// Sets the node-level false-alarm rate, or
    /// [`CoreError::InvalidParameter`] if the rate is outside `[0, 1]`.
    pub fn try_with_false_alarm_rate(mut self, rate: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "false_alarm_rate",
                constraint: "must be in [0, 1]",
            });
        }
        self.false_alarm_rate = rate;
        Ok(self)
    }

    /// Sets the node-level false-alarm rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]`; see
    /// [`SimConfig::try_with_false_alarm_rate`] for the fallible form.
    pub fn with_false_alarm_rate(self, rate: f64) -> Self {
        self.try_with_false_alarm_rate(rate)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the per-period awake probability (duty cycling), or
    /// [`CoreError::InvalidParameter`] if it is outside `[0, 1]`.
    pub fn try_with_awake_probability(mut self, p: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "awake_probability",
                constraint: "must be in [0, 1]",
            });
        }
        self.awake_probability = p;
        Ok(self)
    }

    /// Sets the per-period awake probability (duty cycling).
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`; see
    /// [`SimConfig::try_with_awake_probability`] for the fallible form.
    pub fn with_awake_probability(self, p: f64) -> Self {
        self.try_with_awake_probability(p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the false-alarm sampler. [`FalseAlarmSampler::GeometricSkip`]
    /// draws the same distribution from a different RNG stream layout, so
    /// per-trial outcomes stop being bit-comparable with the default.
    pub fn with_false_alarm_sampler(mut self, sampler: FalseAlarmSampler) -> Self {
        self.false_alarm_sampler = sampler;
        self
    }

    /// Sets the deployment strategy.
    pub fn with_deployment(mut self, deployment: DeploymentSpec) -> Self {
        self.deployment = deployment;
        self
    }

    /// Sets the worker-thread count (0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a [`FaultPlan`] (an inert plan is normalized to `None`).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = (!faults.is_inert()).then_some(faults);
        self
    }

    /// The paper's random-walk configuration (`±π/4` per period).
    pub fn with_paper_random_walk(self) -> Self {
        self.with_motion(MotionSpec::RandomWalk {
            max_turn: std::f64::consts::FRAC_PI_4,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(SystemParams::paper_defaults());
        assert_eq!(c.trials, 10_000);
        assert_eq!(c.boundary, BoundaryPolicy::Torus);
        assert_eq!(c.motion, MotionSpec::Straight);
        assert_eq!(c.false_alarm_rate, 0.0);
        assert_eq!(c.deployment, DeploymentSpec::UniformRandom);
        assert_eq!(c.awake_probability, 1.0);
        assert_eq!(c.false_alarm_sampler, FalseAlarmSampler::Bernoulli);
        assert_eq!(FalseAlarmSampler::default(), FalseAlarmSampler::Bernoulli);
    }

    #[test]
    fn sampler_builder_sets_the_field() {
        let c = SimConfig::new(SystemParams::paper_defaults())
            .with_false_alarm_sampler(FalseAlarmSampler::GeometricSkip);
        assert_eq!(c.false_alarm_sampler, FalseAlarmSampler::GeometricSkip);
    }

    #[test]
    #[should_panic(expected = "awake_probability")]
    fn bad_awake_probability_panics() {
        SimConfig::new(SystemParams::paper_defaults()).with_awake_probability(-0.2);
    }

    #[test]
    fn try_with_methods_validate() {
        let c = SimConfig::new(SystemParams::paper_defaults());
        assert_eq!(c.clone().try_with_trials(5).unwrap().trials, 5);
        assert!(c.clone().try_with_trials(0).is_err());
        assert_eq!(
            c.clone()
                .try_with_false_alarm_rate(0.25)
                .unwrap()
                .false_alarm_rate,
            0.25
        );
        assert!(c.clone().try_with_false_alarm_rate(-0.1).is_err());
        assert_eq!(
            c.clone()
                .try_with_awake_probability(0.5)
                .unwrap()
                .awake_probability,
            0.5
        );
        assert!(c.clone().try_with_awake_probability(f64::NAN).is_err());
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(5)
            .with_seed(9)
            .with_boundary(BoundaryPolicy::Bounded)
            .with_false_alarm_rate(0.01)
            .with_threads(2)
            .with_paper_random_walk();
        assert_eq!(c.trials, 5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.boundary, BoundaryPolicy::Bounded);
        assert_eq!(c.false_alarm_rate, 0.01);
        assert_eq!(c.threads, 2);
        assert!(matches!(c.motion, MotionSpec::RandomWalk { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        SimConfig::new(SystemParams::paper_defaults()).with_trials(0);
    }

    #[test]
    #[should_panic(expected = "false_alarm_rate")]
    fn bad_far_panics() {
        SimConfig::new(SystemParams::paper_defaults()).with_false_alarm_rate(1.5);
    }
}
