//! SVG rendering of simulation scenarios.
//!
//! Produces a self-contained SVG of one trial: the field, sensor positions
//! with sensing disks, the target track with per-period Detectable
//! Regions, and the reports that fired — the picture behind Figures 1–4 of
//! the paper, drawn from real simulation state. Pure `std`; no drawing
//! dependencies.

use crate::engine::TrialOutcome;
use gbd_field::field::SensorField;
use gbd_geometry::point::Point;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Output image width in pixels (height follows the field aspect).
    pub width_px: f64,
    /// Sensing range to draw around each sensor, in meters.
    pub sensing_range: f64,
    /// Whether to shade each period's Detectable Region stadium.
    pub draw_detectable_regions: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 900.0,
            sensing_range: 1_000.0,
            draw_detectable_regions: true,
        }
    }
}

/// Renders one trial as an SVG document string.
///
/// # Example
///
/// ```
/// use gbd_sim::config::SimConfig;
/// use gbd_sim::engine::run_trial;
/// use gbd_sim::render::{render_trial, RenderOptions};
/// use gbd_field::field::{BoundaryPolicy, SensorField};
/// use gbd_field::deployment::{Deployer, UniformRandom};
/// use gbd_geometry::point::Aabb;
/// use gbd_core::params::SystemParams;
/// use rand::SeedableRng;
///
/// let params = SystemParams::paper_defaults().with_n_sensors(60);
/// let config = SimConfig::new(params).with_trials(1).with_seed(3);
/// let outcome = run_trial(&config, 0);
/// let extent = Aabb::from_extent(params.field_width(), params.field_height());
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(3);
/// let field = SensorField::new(
///     extent,
///     UniformRandom.deploy(60, &extent, &mut rng),
///     BoundaryPolicy::Torus,
/// );
/// let svg = render_trial(&field, &outcome, &RenderOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("</svg>"));
/// ```
pub fn render_trial(
    field: &SensorField,
    outcome: &TrialOutcome,
    opts: &RenderOptions,
) -> String {
    let extent = field.extent();
    let scale = opts.width_px / extent.width();
    let height_px = extent.height() * scale;
    let px = |p: Point| -> (f64, f64) {
        ((p.x - extent.min.x) * scale, (extent.max.y - p.y) * scale)
    };
    let r_px = opts.sensing_range * scale;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.2} {h:.2}">"##,
        w = opts.width_px,
        h = height_px
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="#f7f9fb" stroke="#333" stroke-width="1"/>"##
    );

    // Sensing disks, then sensor dots on top.
    for s in field.sensors() {
        let (cx, cy) = px(s.pos);
        let _ = write!(
            svg,
            r##"<circle class="sensing" cx="{cx:.1}" cy="{cy:.1}" r="{r_px:.1}" fill="#4a90d9" fill-opacity="0.12" stroke="#4a90d9" stroke-opacity="0.35" stroke-width="0.5"/>"##
        );
    }
    for s in field.sensors() {
        let (cx, cy) = px(s.pos);
        let _ = write!(
            svg,
            r##"<circle class="sensor" cx="{cx:.1}" cy="{cy:.1}" r="2.2" fill="#1b4a7a"/>"##
        );
    }

    // Detectable Regions (stadiums) per period.
    if opts.draw_detectable_regions {
        for l in 1..=outcome.trajectory.periods() {
            let seg = outcome.trajectory.segment(l);
            let (x1, y1) = px(seg.a);
            let (x2, y2) = px(seg.b);
            let _ = write!(
                svg,
                r##"<line class="dr" x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#e0a13d" stroke-opacity="0.25" stroke-width="{:.1}" stroke-linecap="round"/>"##,
                2.0 * r_px
            );
        }
    }

    // Track polyline.
    let mut points = String::new();
    for p in outcome.trajectory.positions() {
        let (x, y) = px(*p);
        let _ = write!(points, "{x:.1},{y:.1} ");
    }
    let _ = write!(
        svg,
        r##"<polyline class="track" points="{points}" fill="none" stroke="#c0392b" stroke-width="2"/>"##
    );
    // Start marker.
    let (sx, sy) = px(outcome.trajectory.position(0));
    let _ = write!(
        svg,
        r##"<circle class="start" cx="{sx:.1}" cy="{sy:.1}" r="4" fill="#c0392b"/>"##
    );

    // Reports: firing sensors ringed; false alarms drawn hollow.
    for r in &outcome.reports {
        let (cx, cy) = px(r.position);
        let (class, color) = if r.is_true_detection() {
            ("report", "#27ae60")
        } else {
            ("false-alarm", "#8e44ad")
        };
        let _ = write!(
            svg,
            r##"<circle class="{class}" cx="{cx:.1}" cy="{cy:.1}" r="5" fill="none" stroke="{color}" stroke-width="1.8"/>"##
        );
    }

    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::run_trial;
    use gbd_core::params::SystemParams;
    use gbd_field::deployment::{Deployer, UniformRandom};
    use gbd_field::field::BoundaryPolicy;
    use gbd_geometry::point::Aabb;
    use gbd_stats::rng::rng_stream;

    fn scenario() -> (SensorField, TrialOutcome, SystemParams) {
        let params = SystemParams::paper_defaults().with_n_sensors(80);
        let config = SimConfig::new(params).with_trials(1).with_seed(42);
        let outcome = run_trial(&config, 0);
        // Rebuild the same deployment the engine used (same stream).
        let extent = Aabb::from_extent(params.field_width(), params.field_height());
        let mut rng = rng_stream(42, 0);
        let field = SensorField::new(
            extent,
            UniformRandom.deploy(80, &extent, &mut rng),
            BoundaryPolicy::Torus,
        );
        (field, outcome, params)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (field, outcome, params) = scenario();
        let opts = RenderOptions {
            sensing_range: params.sensing_range(),
            ..RenderOptions::default()
        };
        let svg = render_trial(&field, &outcome, &opts);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One dot and one disk per sensor.
        assert_eq!(svg.matches(r##"class="sensor""##).count(), 80);
        assert_eq!(svg.matches(r##"class="sensing""##).count(), 80);
        // One DR per period, one ring per report, one track.
        assert_eq!(svg.matches(r##"class="dr""##).count(), 20);
        assert_eq!(
            svg.matches(r##"class="report""##).count(),
            outcome.true_reports
        );
        assert_eq!(svg.matches(r##"class="track""##).count(), 1);
    }

    #[test]
    fn false_alarms_render_distinctly() {
        let params = SystemParams::paper_defaults().with_n_sensors(80);
        let config = SimConfig::new(params)
            .with_trials(1)
            .with_seed(42)
            .with_false_alarm_rate(0.01);
        let outcome = run_trial(&config, 0);
        let (field, _, _) = scenario();
        let svg = render_trial(&field, &outcome, &RenderOptions::default());
        assert_eq!(
            svg.matches(r##"class="false-alarm""##).count(),
            outcome.false_reports
        );
        assert!(outcome.false_reports > 0);
    }

    #[test]
    fn drs_can_be_disabled() {
        let (field, outcome, _) = scenario();
        let opts = RenderOptions {
            draw_detectable_regions: false,
            ..RenderOptions::default()
        };
        let svg = render_trial(&field, &outcome, &opts);
        assert_eq!(svg.matches(r##"class="dr""##).count(), 0);
    }

    #[test]
    fn coordinates_stay_inside_the_viewbox() {
        let (field, outcome, _) = scenario();
        let svg = render_trial(&field, &outcome, &RenderOptions::default());
        // Sensor dots must lie within [0, width] x [0, height].
        for cap in svg.split(r##"class="sensor" cx=""##).skip(1) {
            let cx: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=900.0).contains(&cx), "cx={cx}");
        }
    }
}
