//! The per-trial simulation engine.
//!
//! One trial reproduces the paper's §4 procedure: "we randomly generate all
//! nodes' locations and also randomly choose the starting location and
//! moving direction of the target. For each sensing period, we compute the
//! geographical region the moving target passes and compare that with the
//! locations of all sensor nodes" — each covered sensor then reports with
//! probability `Pd`.

use crate::config::{DeploymentSpec, MotionSpec, SimConfig};
use crate::reports::{DetectionReport, ReportKind};
use gbd_field::deployment::{Deployer, JitteredGrid, UniformRandom};
use gbd_field::field::SensorField;
use gbd_geometry::point::{Aabb, Point};
use gbd_motion::random_walk::RandomWalk;
use gbd_motion::straight::StraightLine;
use gbd_motion::trajectory::{MotionModel, Trajectory};
use gbd_motion::varying_speed::VaryingSpeed;
use gbd_stats::rng::{rng_stream, Rng};
use rand::Rng as _;

/// Everything observable from a single trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// All reports, true detections and false alarms, in period order.
    pub reports: Vec<DetectionReport>,
    /// Number of true-detection reports.
    pub true_reports: usize,
    /// Number of false-alarm reports.
    pub false_reports: usize,
    /// True detections suppressed by the [`crate::faults::FaultPlan`]
    /// (dead node or dropped report); always 0 without one.
    pub dropped_reports: usize,
    /// The target trajectory of this trial.
    pub trajectory: Trajectory,
}

impl TrialOutcome {
    /// The paper's detection criterion: at least `k` *true* reports within
    /// the `M`-period window (false alarms excluded, as in the analysis).
    pub fn detected(&self, k: usize) -> bool {
        self.true_reports >= k
    }

    /// The first period (1-based) by whose end `k` true reports had been
    /// generated; `None` if the window never reaches `k`. This is the
    /// simulated first-passage time validated against
    /// `gbd-core::time_to_detection`.
    pub fn first_detection_period(&self, k: usize) -> Option<usize> {
        if k == 0 {
            return Some(0);
        }
        let mut count = 0usize;
        for r in self.reports.iter().filter(|r| r.is_true_detection()) {
            count += 1;
            if count == k {
                return Some(r.period);
            }
        }
        None
    }

    /// Naive counting over all reports (true + false): what a base station
    /// without track filtering would conclude.
    pub fn detected_naive(&self, k: usize) -> bool {
        self.true_reports + self.false_reports >= k
    }
}

/// Runs a single trial. Deterministic in `(config.seed, trial_index)`.
pub fn run_trial(config: &SimConfig, trial_index: u64) -> TrialOutcome {
    let mut rng = rng_stream(config.seed, trial_index);
    let params = &config.params;
    let extent = Aabb::from_extent(params.field_width(), params.field_height());

    // Deployment.
    let positions = match config.deployment {
        DeploymentSpec::UniformRandom => {
            UniformRandom.deploy(params.n_sensors(), &extent, &mut rng)
        }
        DeploymentSpec::Grid { jitter } => {
            JitteredGrid::new(jitter).deploy(params.n_sensors(), &extent, &mut rng)
        }
    };
    let field = SensorField::new(extent, positions, config.boundary);

    // Target track: uniform start, uniform heading.
    let start = Point::new(
        rng.gen_range(extent.min.x..extent.max.x),
        rng.gen_range(extent.min.y..extent.max.y),
    );
    let heading = rng.gen_range(0.0..std::f64::consts::TAU);
    let trajectory = generate_trajectory(config, start, heading, &mut rng);

    // Sensing: per period, every covered *awake* sensor flips a Pd coin.
    // Duty cycling composes multiplicatively with Pd, which the tests
    // exploit to validate against the analysis at pd' = pd * p_awake.
    //
    // Faults are hashed from (plan seed, trial, sensor, period), never
    // drawn from `rng`, and suppress a report only *after* its coins are
    // flipped — the RNG stream stays aligned with the fault-free run, so
    // a faulted trial's reports are exactly a subset of the fault-free
    // trial's.
    let faults = config.faults.filter(|f| !f.is_inert());
    let mut reports = Vec::new();
    let mut true_reports = 0;
    let mut dropped_reports = 0;
    for period in 1..=params.m_periods() {
        let dr = trajectory.detectable_region(period, params.sensing_range());
        for id in field.query_stadium(&dr) {
            if config.awake_probability < 1.0 && !rng.gen_bool(config.awake_probability) {
                continue;
            }
            if rng.gen_bool(params.pd()) {
                if let Some(plan) = &faults {
                    if plan.node_failed(trial_index, id.0)
                        || plan.report_dropped(trial_index, id.0, period)
                    {
                        dropped_reports += 1;
                        continue;
                    }
                }
                reports.push(DetectionReport::new(
                    id,
                    period,
                    field.sensor(id).pos,
                    ReportKind::TrueDetection,
                ));
                true_reports += 1;
            }
        }
    }

    // Optional noise: node-level false alarms, independent per
    // sensor-period. A dead node cannot misfire either, but report drops
    // do not apply (dropping noise is indistinguishable from less noise).
    let mut false_reports = 0;
    if config.false_alarm_rate > 0.0 {
        false_reports = inject_false_alarms(
            &field,
            params.m_periods(),
            config.false_alarm_rate,
            &mut rng,
            &mut reports,
            faults.as_ref().map(|plan| (plan, trial_index)),
        );
        reports.sort_by_key(|r| r.period);
    }

    TrialOutcome {
        reports,
        true_reports,
        false_reports,
        dropped_reports,
        trajectory,
    }
}

fn generate_trajectory(
    config: &SimConfig,
    start: Point,
    heading: f64,
    rng: &mut Rng,
) -> Trajectory {
    let params = &config.params;
    match config.motion {
        MotionSpec::Straight => StraightLine::new(params.speed()).generate(
            start,
            heading,
            params.period_s(),
            params.m_periods(),
            rng,
        ),
        MotionSpec::RandomWalk { max_turn } => RandomWalk::new(params.speed(), max_turn)
            .generate(start, heading, params.period_s(), params.m_periods(), rng),
        MotionSpec::VaryingSpeed { v_min, v_max } => VaryingSpeed::new(v_min, v_max).generate(
            start,
            heading,
            params.period_s(),
            params.m_periods(),
            rng,
        ),
    }
}

/// Adds Bernoulli false alarms for every sensor-period pair; returns how
/// many were injected. The coin is drawn before the fault check (keeping
/// the RNG stream fault-invariant), and a dead node's misfires are
/// suppressed.
pub(crate) fn inject_false_alarms(
    field: &SensorField,
    m_periods: usize,
    rate: f64,
    rng: &mut Rng,
    reports: &mut Vec<DetectionReport>,
    faults: Option<(&crate::faults::FaultPlan, u64)>,
) -> usize {
    let mut injected = 0;
    for period in 1..=m_periods {
        for s in field.sensors() {
            if rng.gen_bool(rate) {
                if let Some((plan, trial)) = faults {
                    if plan.node_failed(trial, s.id.0) {
                        continue;
                    }
                }
                reports.push(DetectionReport::new(
                    s.id,
                    period,
                    s.pos,
                    ReportKind::FalseAlarm,
                ));
                injected += 1;
            }
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::params::SystemParams;

    fn config() -> SimConfig {
        SimConfig::new(SystemParams::paper_defaults()).with_trials(10)
    }

    #[test]
    fn trial_is_deterministic() {
        let c = config();
        let a = run_trial(&c, 3);
        let b = run_trial(&c, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ() {
        let c = config();
        let a = run_trial(&c, 0);
        let b = run_trial(&c, 1);
        assert_ne!(a.trajectory, b.trajectory);
    }

    #[test]
    fn reports_lie_on_track() {
        // Every true report's sensor must be within Rs of the period's
        // segment (modulo the torus wrap).
        let c = config().with_seed(11);
        for trial in 0..5 {
            let out = run_trial(&c, trial);
            let rs = c.params.sensing_range();
            let w = c.params.field_width();
            let h = c.params.field_height();
            for r in &out.reports {
                let seg = out.trajectory.segment(r.period);
                let mut min_d = f64::INFINITY;
                for ix in -1..=1i32 {
                    for iy in -1..=1i32 {
                        let img = Point::new(
                            r.position.x + ix as f64 * w,
                            r.position.y + iy as f64 * h,
                        );
                        min_d = min_d.min(seg.distance_to(img));
                    }
                }
                assert!(min_d <= rs + 1e-9, "report off-track: {min_d}");
            }
        }
    }

    #[test]
    fn pd_zero_produces_no_reports() {
        let c = SimConfig::new(SystemParams::paper_defaults().with_pd(0.0)).with_trials(1);
        let out = run_trial(&c, 0);
        assert_eq!(out.true_reports, 0);
        assert!(!out.detected(1));
    }

    #[test]
    fn counts_are_consistent() {
        let c = config().with_false_alarm_rate(0.001).with_seed(5);
        let out = run_trial(&c, 2);
        assert_eq!(out.reports.len(), out.true_reports + out.false_reports);
        let trues = out.reports.iter().filter(|r| r.is_true_detection()).count();
        assert_eq!(trues, out.true_reports);
    }

    #[test]
    fn naive_detection_includes_false_alarms() {
        let c = config().with_false_alarm_rate(0.05).with_seed(6);
        let out = run_trial(&c, 1);
        assert!(out.false_reports > 0, "expected some false alarms at 5%");
        assert!(out.detected_naive(1));
    }

    #[test]
    fn faulted_reports_are_a_subset_of_fault_free() {
        use crate::faults::FaultPlan;
        let clean = config().with_seed(12);
        let faulted = clean.clone().with_faults(
            FaultPlan::new(77)
                .with_node_failure_rate(0.2)
                .with_report_drop_rate(0.1),
        );
        let mut any_dropped = false;
        for trial in 0..10 {
            let a = run_trial(&clean, trial);
            let b = run_trial(&faulted, trial);
            // Identical trajectory: faults never touch the RNG stream.
            assert_eq!(a.trajectory, b.trajectory);
            // Surviving reports are exactly the fault-free reports minus
            // the suppressed ones.
            assert!(b.reports.iter().all(|r| a.reports.contains(r)));
            assert_eq!(
                b.true_reports + b.dropped_reports,
                a.true_reports,
                "trial {trial}"
            );
            any_dropped |= b.dropped_reports > 0;
            // And the faulted run is itself deterministic.
            assert_eq!(b, run_trial(&faulted, trial));
        }
        assert!(any_dropped, "rates this high must suppress something");
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        let clean = config().with_seed(3);
        let inert = clean.clone().with_faults(crate::faults::FaultPlan::new(9));
        assert_eq!(inert.faults, None);
        assert_eq!(run_trial(&clean, 0), run_trial(&inert, 0));
    }

    #[test]
    fn dead_nodes_do_not_misfire() {
        use crate::faults::FaultPlan;
        let clean = config().with_seed(21).with_false_alarm_rate(0.05);
        let faulted = clean
            .clone()
            .with_faults(FaultPlan::new(5).with_node_failure_rate(0.5));
        let a = run_trial(&clean, 4);
        let b = run_trial(&faulted, 4);
        assert!(
            b.false_reports < a.false_reports,
            "{} vs {}",
            b.false_reports,
            a.false_reports
        );
        assert!(b.reports.iter().all(|r| a.reports.contains(r)));
    }

    #[test]
    fn varying_speed_trial_runs() {
        let c = config().with_motion(MotionSpec::VaryingSpeed {
            v_min: 4.0,
            v_max: 10.0,
        });
        let out = run_trial(&c, 0);
        assert_eq!(out.trajectory.periods(), 20);
        for s in out.trajectory.step_lengths() {
            assert!((240.0 - 1e-6..=600.0 + 1e-6).contains(&s));
        }
    }
}

#[cfg(test)]
mod deployment_tests {
    use super::*;
    use crate::config::DeploymentSpec;
    use gbd_core::params::SystemParams;

    #[test]
    fn grid_deployment_runs_and_differs_from_uniform() {
        let base = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(1)
            .with_seed(4);
        let uniform = run_trial(&base, 0);
        let grid = run_trial(
            &base
                .clone()
                .with_deployment(DeploymentSpec::Grid { jitter: 0.0 }),
            0,
        );
        // Same trajectory stream position differs (grid consumes no RNG for
        // placement when jitter = 0), so just assert both produce sane
        // outcomes and different report patterns.
        assert_eq!(uniform.trajectory.periods(), 20);
        assert_eq!(grid.trajectory.periods(), 20);
        assert_ne!(uniform.reports, grid.reports);
    }

    #[test]
    fn first_detection_period_consistent_with_detection() {
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(1)
            .with_seed(8);
        for trial in 0..30 {
            let out = run_trial(&cfg, trial);
            match out.first_detection_period(5) {
                Some(p) => {
                    assert!(out.detected(5));
                    assert!((1..=20).contains(&p));
                    // Exactly 5 reports had occurred by period p, at most 4 before.
                    let before: usize = out
                        .reports
                        .iter()
                        .filter(|r| r.is_true_detection() && r.period < p)
                        .count();
                    assert!(before < 5);
                }
                None => assert!(!out.detected(5)),
            }
        }
    }

    #[test]
    fn first_detection_period_k_zero() {
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(1)
            .with_seed(8);
        let out = run_trial(&cfg, 0);
        assert_eq!(out.first_detection_period(0), Some(0));
    }
}
