//! The per-trial simulation engine.
//!
//! One trial reproduces the paper's §4 procedure: "we randomly generate all
//! nodes' locations and also randomly choose the starting location and
//! moving direction of the target. For each sensing period, we compute the
//! geographical region the moving target passes and compare that with the
//! locations of all sensor nodes" — each covered sensor then reports with
//! probability `Pd`.

use crate::config::{DeploymentSpec, FalseAlarmSampler, MotionSpec, SimConfig};
use crate::reports::{DetectionReport, ReportKind};
use gbd_field::deployment::{Deployer, JitteredGrid, UniformRandom};
use gbd_field::field::{BoundaryPolicy, SensorField};
use gbd_field::sensor::SensorId;
use gbd_geometry::point::{Aabb, Point};
use gbd_motion::random_walk::RandomWalk;
use gbd_motion::straight::StraightLine;
use gbd_motion::trajectory::{MotionModel, Trajectory};
use gbd_motion::varying_speed::VaryingSpeed;
use gbd_stats::rng::{rng_stream, Rng};
use rand::Rng as _;

/// Everything observable from a single trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// All reports, true detections and false alarms, in period order.
    pub reports: Vec<DetectionReport>,
    /// Number of true-detection reports.
    pub true_reports: usize,
    /// Number of false-alarm reports.
    pub false_reports: usize,
    /// True detections suppressed by the [`crate::faults::FaultPlan`]
    /// (dead node or dropped report); always 0 without one.
    pub dropped_reports: usize,
    /// The target trajectory of this trial.
    pub trajectory: Trajectory,
}

impl TrialOutcome {
    /// The paper's detection criterion: at least `k` *true* reports within
    /// the `M`-period window (false alarms excluded, as in the analysis).
    pub fn detected(&self, k: usize) -> bool {
        self.true_reports >= k
    }

    /// The first period (1-based) by whose end `k` true reports had been
    /// generated; `None` if the window never reaches `k`. This is the
    /// simulated first-passage time validated against
    /// `gbd-core::time_to_detection`.
    pub fn first_detection_period(&self, k: usize) -> Option<usize> {
        if k == 0 {
            return Some(0);
        }
        let mut count = 0usize;
        for r in self.reports.iter().filter(|r| r.is_true_detection()) {
            count += 1;
            if count == k {
                return Some(r.period);
            }
        }
        None
    }

    /// Naive counting over all reports (true + false): what a base station
    /// without track filtering would conclude.
    pub fn detected_naive(&self, k: usize) -> bool {
        self.true_reports + self.false_reports >= k
    }
}

/// Reusable per-worker buffers for [`run_trial_in`]: the sensor field
/// (positions, CSR index, build scratch) and the query-hit buffer. A
/// warm scratch makes the whole per-trial loop allocation-free apart from
/// the outcome's report list.
#[derive(Debug, Clone)]
pub struct TrialScratch {
    field: SensorField,
    hits: Vec<SensorId>,
}

impl TrialScratch {
    /// Creates an empty (cold) scratch.
    pub fn new() -> Self {
        TrialScratch {
            field: SensorField::new(
                Aabb::from_extent(1.0, 1.0),
                Vec::new(),
                BoundaryPolicy::Bounded,
            ),
            hits: Vec::new(),
        }
    }
}

impl Default for TrialScratch {
    fn default() -> Self {
        TrialScratch::new()
    }
}

/// Runs a single trial. Deterministic in `(config.seed, trial_index)`.
pub fn run_trial(config: &SimConfig, trial_index: u64) -> TrialOutcome {
    run_trial_in(config, trial_index, &mut TrialScratch::new())
}

/// Runs a single trial inside a reusable [`TrialScratch`]. Identical in
/// every byte of output to [`run_trial`] — the scratch only recycles
/// buffers between trials.
pub fn run_trial_in(
    config: &SimConfig,
    trial_index: u64,
    scratch: &mut TrialScratch,
) -> TrialOutcome {
    let mut rng = rng_stream(config.seed, trial_index);
    let params = &config.params;
    let extent = Aabb::from_extent(params.field_width(), params.field_height());
    let TrialScratch { field, hits } = scratch;

    // Deployment and target track, drawn in the fixed stream order
    // (positions, then start, then heading, then per-period motion), then
    // indexed focused on the track corridor: the field only grids the
    // sensors inside the union of the M Detectable-Region bounding boxes,
    // which is all the sensing loop below ever queries. The index build
    // consumes no randomness, so focusing cannot shift the RNG stream.
    let rng_ref = &mut rng;
    let trajectory = field.rebuild_focused(extent, config.boundary, move |buf| {
        match config.deployment {
            DeploymentSpec::UniformRandom => {
                UniformRandom.deploy_into(params.n_sensors(), &extent, rng_ref, buf)
            }
            DeploymentSpec::Grid { jitter } => {
                JitteredGrid::new(jitter).deploy_into(params.n_sensors(), &extent, rng_ref, buf)
            }
        }
        let start = Point::new(
            rng_ref.gen_range(extent.min.x..extent.max.x),
            rng_ref.gen_range(extent.min.y..extent.max.y),
        );
        let heading = rng_ref.gen_range(0.0..std::f64::consts::TAU);
        let trajectory = generate_trajectory(config, start, heading, rng_ref);
        let mut focus = Aabb {
            min: start,
            max: start,
        };
        for period in 1..=params.m_periods() {
            let dr = trajectory.detectable_region(period, params.sensing_range());
            focus = focus.union(&dr.bounding_box());
        }
        (focus, trajectory)
    });

    // Sensing: per period, every covered *awake* sensor flips a Pd coin.
    // Duty cycling composes multiplicatively with Pd, which the tests
    // exploit to validate against the analysis at pd' = pd * p_awake.
    //
    // Faults are hashed from (plan seed, trial, sensor, period), never
    // drawn from `rng`, and suppress a report only *after* its coins are
    // flipped — the RNG stream stays aligned with the fault-free run, so
    // a faulted trial's reports are exactly a subset of the fault-free
    // trial's.
    let faults = config.faults.filter(|f| !f.is_inert());
    let mut reports = Vec::new();
    let mut true_reports = 0;
    let mut dropped_reports = 0;
    for period in 1..=params.m_periods() {
        let dr = trajectory.detectable_region(period, params.sensing_range());
        field.query_stadium_into(&dr, hits);
        for &id in hits.iter() {
            if config.awake_probability < 1.0 && !rng.gen_bool(config.awake_probability) {
                continue;
            }
            if rng.gen_bool(params.pd()) {
                if let Some(plan) = &faults {
                    if plan.node_failed(trial_index, id.0)
                        || plan.report_dropped(trial_index, id.0, period)
                    {
                        dropped_reports += 1;
                        continue;
                    }
                }
                reports.push(DetectionReport::new(
                    id,
                    period,
                    field.sensor(id).pos,
                    ReportKind::TrueDetection,
                ));
                true_reports += 1;
            }
        }
    }

    // Optional noise: node-level false alarms, independent per
    // sensor-period. A dead node cannot misfire either, but report drops
    // do not apply (dropping noise is indistinguishable from less noise).
    let mut false_reports = 0;
    if config.false_alarm_rate > 0.0 {
        false_reports = inject_false_alarms(
            field,
            params.m_periods(),
            config.false_alarm_rate,
            config.false_alarm_sampler,
            &mut rng,
            &mut reports,
            faults.as_ref().map(|plan| (plan, trial_index)),
        );
        reports.sort_by_key(|r| r.period);
    }

    TrialOutcome {
        reports,
        true_reports,
        false_reports,
        dropped_reports,
        trajectory,
    }
}

fn generate_trajectory(
    config: &SimConfig,
    start: Point,
    heading: f64,
    rng: &mut Rng,
) -> Trajectory {
    let params = &config.params;
    match config.motion {
        MotionSpec::Straight => StraightLine::new(params.speed()).generate(
            start,
            heading,
            params.period_s(),
            params.m_periods(),
            rng,
        ),
        MotionSpec::RandomWalk { max_turn } => RandomWalk::new(params.speed(), max_turn)
            .generate(start, heading, params.period_s(), params.m_periods(), rng),
        MotionSpec::VaryingSpeed { v_min, v_max } => VaryingSpeed::new(v_min, v_max).generate(
            start,
            heading,
            params.period_s(),
            params.m_periods(),
            rng,
        ),
    }
}

/// Adds false alarms for the `N × M` sensor-period grid; returns how many
/// were injected. The randomness is drawn before the fault check (keeping
/// the RNG stream fault-invariant), and a dead node's misfires are
/// suppressed.
pub(crate) fn inject_false_alarms(
    field: &SensorField,
    m_periods: usize,
    rate: f64,
    sampler: FalseAlarmSampler,
    rng: &mut Rng,
    reports: &mut Vec<DetectionReport>,
    faults: Option<(&crate::faults::FaultPlan, u64)>,
) -> usize {
    match sampler {
        FalseAlarmSampler::Bernoulli => {
            let mut injected = 0;
            for period in 1..=m_periods {
                for s in field.sensors() {
                    if rng.gen_bool(rate) {
                        if let Some((plan, trial)) = faults {
                            if plan.node_failed(trial, s.id.0) {
                                continue;
                            }
                        }
                        reports.push(DetectionReport::new(
                            s.id,
                            period,
                            s.pos,
                            ReportKind::FalseAlarm,
                        ));
                        injected += 1;
                    }
                }
            }
            injected
        }
        FalseAlarmSampler::GeometricSkip => {
            inject_false_alarms_geometric(field, m_periods, rate, rng, reports, faults)
        }
    }
}

/// Geometric skip-ahead sampling over the flattened period-major
/// sensor-period grid: instead of one coin per slot, draw the gap to the
/// next firing slot directly (`floor(ln(U) / ln(1 - rate))` is geometric
/// with success probability `rate`), so cost is proportional to the number
/// of alarms. Same firing distribution as the Bernoulli scan, different
/// RNG stream layout.
fn inject_false_alarms_geometric(
    field: &SensorField,
    m_periods: usize,
    rate: f64,
    rng: &mut Rng,
    reports: &mut Vec<DetectionReport>,
    faults: Option<(&crate::faults::FaultPlan, u64)>,
) -> usize {
    let n = field.len();
    let total = m_periods as u64 * n as u64;
    if total == 0 {
        return 0;
    }
    // ln(1 - 1.0) = -inf makes every skip 0, so rate = 1 needs no special
    // case: every slot fires.
    let ln_q = (1.0 - rate).ln();
    let mut injected = 0;
    let mut idx: u64 = 0;
    loop {
        // U in (0, 1]: 1 - gen::<f64>() avoids ln(0).
        let u = 1.0 - rng.gen::<f64>();
        let skip = (u.ln() / ln_q).floor();
        // NaN-safe: an over-large or non-finite skip means no further
        // slot fires.
        if !skip.is_finite() || skip >= (total - idx) as f64 {
            break;
        }
        idx += skip as u64;
        let period = (idx / n as u64) as usize + 1;
        let sensor = SensorId((idx % n as u64) as usize);
        let alive = match faults {
            Some((plan, trial)) => !plan.node_failed(trial, sensor.0),
            None => true,
        };
        if alive {
            reports.push(DetectionReport::new(
                sensor,
                period,
                field.sensor(sensor).pos,
                ReportKind::FalseAlarm,
            ));
            injected += 1;
        }
        idx += 1;
        if idx >= total {
            break;
        }
    }
    injected
}

#[cfg(test)]
pub(crate) mod oracle_support {
    //! The pre-CSR trial loop, replayed verbatim over the retained
    //! nested-`Vec` [`NestedGridField`] — the reference side of the
    //! engine's bit-identity tests. Every RNG draw, query, and report push
    //! happens in exactly the order the engine shipped with before the CSR
    //! rewrite.
    use super::*;
    use gbd_field::oracle::NestedGridField;

    /// The engine's pre-CSR `run_trial`, byte for byte.
    pub(crate) fn run_trial_oracle(config: &SimConfig, trial_index: u64) -> TrialOutcome {
        let mut rng = rng_stream(config.seed, trial_index);
        let params = &config.params;
        let extent = Aabb::from_extent(params.field_width(), params.field_height());

        let positions = match config.deployment {
            DeploymentSpec::UniformRandom => {
                UniformRandom.deploy(params.n_sensors(), &extent, &mut rng)
            }
            DeploymentSpec::Grid { jitter } => {
                JitteredGrid::new(jitter).deploy(params.n_sensors(), &extent, &mut rng)
            }
        };
        let field = NestedGridField::new(extent, positions, config.boundary);

        let start = Point::new(
            rng.gen_range(extent.min.x..extent.max.x),
            rng.gen_range(extent.min.y..extent.max.y),
        );
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let trajectory = generate_trajectory(config, start, heading, &mut rng);

        let faults = config.faults.filter(|f| !f.is_inert());
        let mut reports = Vec::new();
        let mut true_reports = 0;
        let mut dropped_reports = 0;
        for period in 1..=params.m_periods() {
            let dr = trajectory.detectable_region(period, params.sensing_range());
            for id in field.query_stadium(&dr) {
                if config.awake_probability < 1.0 && !rng.gen_bool(config.awake_probability) {
                    continue;
                }
                if rng.gen_bool(params.pd()) {
                    if let Some(plan) = &faults {
                        if plan.node_failed(trial_index, id.0)
                            || plan.report_dropped(trial_index, id.0, period)
                        {
                            dropped_reports += 1;
                            continue;
                        }
                    }
                    reports.push(DetectionReport::new(
                        id,
                        period,
                        field.sensor(id).pos,
                        ReportKind::TrueDetection,
                    ));
                    true_reports += 1;
                }
            }
        }

        let mut false_reports = 0;
        if config.false_alarm_rate > 0.0 {
            for period in 1..=params.m_periods() {
                for s in field.sensors() {
                    if rng.gen_bool(config.false_alarm_rate) {
                        if let Some(plan) = &faults {
                            if plan.node_failed(trial_index, s.id.0) {
                                continue;
                            }
                        }
                        reports.push(DetectionReport::new(
                            s.id,
                            period,
                            s.pos,
                            ReportKind::FalseAlarm,
                        ));
                        false_reports += 1;
                    }
                }
            }
            reports.sort_by_key(|r| r.period);
        }

        TrialOutcome {
            reports,
            true_reports,
            false_reports,
            dropped_reports,
            trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_core::params::SystemParams;

    fn config() -> SimConfig {
        SimConfig::new(SystemParams::paper_defaults()).with_trials(10)
    }

    #[test]
    fn trial_is_deterministic() {
        let c = config();
        let a = run_trial(&c, 3);
        let b = run_trial(&c, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ() {
        let c = config();
        let a = run_trial(&c, 0);
        let b = run_trial(&c, 1);
        assert_ne!(a.trajectory, b.trajectory);
    }

    #[test]
    fn reports_lie_on_track() {
        // Every true report's sensor must be within Rs of the period's
        // segment (modulo the torus wrap).
        let c = config().with_seed(11);
        for trial in 0..5 {
            let out = run_trial(&c, trial);
            let rs = c.params.sensing_range();
            let w = c.params.field_width();
            let h = c.params.field_height();
            for r in &out.reports {
                let seg = out.trajectory.segment(r.period);
                let mut min_d = f64::INFINITY;
                for ix in -1..=1i32 {
                    for iy in -1..=1i32 {
                        let img = Point::new(
                            r.position.x + ix as f64 * w,
                            r.position.y + iy as f64 * h,
                        );
                        min_d = min_d.min(seg.distance_to(img));
                    }
                }
                assert!(min_d <= rs + 1e-9, "report off-track: {min_d}");
            }
        }
    }

    #[test]
    fn pd_zero_produces_no_reports() {
        let c = SimConfig::new(SystemParams::paper_defaults().with_pd(0.0)).with_trials(1);
        let out = run_trial(&c, 0);
        assert_eq!(out.true_reports, 0);
        assert!(!out.detected(1));
    }

    #[test]
    fn counts_are_consistent() {
        let c = config().with_false_alarm_rate(0.001).with_seed(5);
        let out = run_trial(&c, 2);
        assert_eq!(out.reports.len(), out.true_reports + out.false_reports);
        let trues = out.reports.iter().filter(|r| r.is_true_detection()).count();
        assert_eq!(trues, out.true_reports);
    }

    #[test]
    fn naive_detection_includes_false_alarms() {
        let c = config().with_false_alarm_rate(0.05).with_seed(6);
        let out = run_trial(&c, 1);
        assert!(out.false_reports > 0, "expected some false alarms at 5%");
        assert!(out.detected_naive(1));
    }

    #[test]
    fn faulted_reports_are_a_subset_of_fault_free() {
        use crate::faults::FaultPlan;
        let clean = config().with_seed(12);
        let faulted = clean.clone().with_faults(
            FaultPlan::new(77)
                .with_node_failure_rate(0.2)
                .with_report_drop_rate(0.1),
        );
        let mut any_dropped = false;
        for trial in 0..10 {
            let a = run_trial(&clean, trial);
            let b = run_trial(&faulted, trial);
            // Identical trajectory: faults never touch the RNG stream.
            assert_eq!(a.trajectory, b.trajectory);
            // Surviving reports are exactly the fault-free reports minus
            // the suppressed ones.
            assert!(b.reports.iter().all(|r| a.reports.contains(r)));
            assert_eq!(
                b.true_reports + b.dropped_reports,
                a.true_reports,
                "trial {trial}"
            );
            any_dropped |= b.dropped_reports > 0;
            // And the faulted run is itself deterministic.
            assert_eq!(b, run_trial(&faulted, trial));
        }
        assert!(any_dropped, "rates this high must suppress something");
    }

    #[test]
    fn inert_fault_plan_changes_nothing() {
        let clean = config().with_seed(3);
        let inert = clean.clone().with_faults(crate::faults::FaultPlan::new(9));
        assert_eq!(inert.faults, None);
        assert_eq!(run_trial(&clean, 0), run_trial(&inert, 0));
    }

    #[test]
    fn dead_nodes_do_not_misfire() {
        use crate::faults::FaultPlan;
        let clean = config().with_seed(21).with_false_alarm_rate(0.05);
        let faulted = clean
            .clone()
            .with_faults(FaultPlan::new(5).with_node_failure_rate(0.5));
        let a = run_trial(&clean, 4);
        let b = run_trial(&faulted, 4);
        assert!(
            b.false_reports < a.false_reports,
            "{} vs {}",
            b.false_reports,
            a.false_reports
        );
        assert!(b.reports.iter().all(|r| a.reports.contains(r)));
    }

    #[test]
    fn varying_speed_trial_runs() {
        let c = config().with_motion(MotionSpec::VaryingSpeed {
            v_min: 4.0,
            v_max: 10.0,
        });
        let out = run_trial(&c, 0);
        assert_eq!(out.trajectory.periods(), 20);
        for s in out.trajectory.step_lengths() {
            assert!((240.0 - 1e-6..=600.0 + 1e-6).contains(&s));
        }
    }

    #[test]
    fn trial_matches_the_nested_grid_oracle_bit_for_bit() {
        use crate::faults::FaultPlan;
        // Every knob that touches the per-trial loop: boundary policy,
        // deployment, motion, duty cycling, noise, faults.
        let configs = [
            config(),
            config().with_boundary(crate::config::BoundaryPolicy::Bounded),
            config().with_deployment(DeploymentSpec::Grid { jitter: 0.3 }),
            config().with_paper_random_walk(),
            config().with_awake_probability(0.6),
            config().with_false_alarm_rate(0.01),
            config().with_false_alarm_rate(0.02).with_faults(
                FaultPlan::new(77)
                    .with_node_failure_rate(0.2)
                    .with_report_drop_rate(0.1),
            ),
        ];
        for (ci, c) in configs.iter().enumerate() {
            for trial in 0..5 {
                let new = run_trial(c, trial);
                let old = oracle_support::run_trial_oracle(c, trial);
                assert_eq!(new, old, "config {ci} trial {trial}");
                assert_eq!(
                    format!("{new:?}"),
                    format!("{old:?}"),
                    "config {ci} trial {trial} debug repr"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_between_trials() {
        let a = config().with_false_alarm_rate(0.01).with_seed(14);
        let b = a
            .clone()
            .with_boundary(crate::config::BoundaryPolicy::Bounded);
        let mut scratch = TrialScratch::new();
        // Interleave configs and trial indices through ONE scratch; each
        // outcome must equal a cold run.
        for trial in 0..6 {
            let cfg = if trial % 2 == 0 { &a } else { &b };
            assert_eq!(
                run_trial_in(cfg, trial, &mut scratch),
                run_trial(cfg, trial),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn geometric_skip_agrees_with_bernoulli_statistically() {
        use gbd_field::field::{BoundaryPolicy, SensorField};
        use gbd_stats::interval::wilson;
        // Same Bernoulli(rate) firing distribution, different stream
        // layout: compare the two samplers' injected-count proportions
        // over seeded campaigns with 95% Wilson intervals.
        let extent = Aabb::from_extent(100.0, 100.0);
        let positions: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64 * 10.0 + 5.0, (i / 10) as f64 * 10.0 + 5.0))
            .collect();
        let field = SensorField::new(extent, positions, BoundaryPolicy::Bounded);
        let (m, rate, campaigns) = (20usize, 0.01f64, 400u64);
        let slots = campaigns * (m as u64) * (field.len() as u64);
        let mut fired = [0u64; 2];
        for (si, sampler) in [
            FalseAlarmSampler::Bernoulli,
            FalseAlarmSampler::GeometricSkip,
        ]
        .into_iter()
        .enumerate()
        {
            let mut reports = Vec::new();
            for c in 0..campaigns {
                let mut rng = rng_stream(0xA1A3, c);
                reports.clear();
                fired[si] +=
                    inject_false_alarms(&field, m, rate, sampler, &mut rng, &mut reports, None)
                        as u64;
            }
        }
        let bern = wilson(fired[0], slots, 1.96).unwrap();
        let geom = wilson(fired[1], slots, 1.96).unwrap();
        assert!(bern.contains(rate), "Bernoulli interval misses the rate");
        assert!(geom.contains(rate), "geometric interval misses the rate");
        assert!(
            bern.lo <= geom.hi && geom.lo <= bern.hi,
            "sampler intervals disagree: [{}, {}] vs [{}, {}]",
            bern.lo,
            bern.hi,
            geom.lo,
            geom.hi
        );
    }

    #[test]
    fn geometric_skip_fires_every_slot_at_rate_one() {
        use gbd_field::field::{BoundaryPolicy, SensorField};
        let extent = Aabb::from_extent(10.0, 10.0);
        let field = SensorField::new(
            extent,
            vec![Point::new(2.0, 2.0), Point::new(8.0, 8.0)],
            BoundaryPolicy::Bounded,
        );
        let mut rng = rng_stream(1, 0);
        let mut reports = Vec::new();
        let injected = inject_false_alarms(
            &field,
            3,
            1.0,
            FalseAlarmSampler::GeometricSkip,
            &mut rng,
            &mut reports,
            None,
        );
        assert_eq!(injected, 6);
        // Period-major order over the flattened grid.
        let seen: Vec<(usize, usize)> =
            reports.iter().map(|r| (r.period, r.sensor.0)).collect();
        assert_eq!(seen, vec![(1, 0), (1, 1), (2, 0), (2, 1), (3, 0), (3, 1)]);
    }

    #[test]
    fn geometric_skip_respects_dead_nodes() {
        use crate::faults::FaultPlan;
        let clean = config()
            .with_seed(21)
            .with_false_alarm_rate(0.05)
            .with_false_alarm_sampler(FalseAlarmSampler::GeometricSkip);
        let faulted = clean
            .clone()
            .with_faults(FaultPlan::new(5).with_node_failure_rate(0.5));
        let a = run_trial(&clean, 4);
        let b = run_trial(&faulted, 4);
        assert!(
            b.false_reports < a.false_reports,
            "{} vs {}",
            b.false_reports,
            a.false_reports
        );
        let false_ids: Vec<_> = b
            .reports
            .iter()
            .filter(|r| !r.is_true_detection())
            .collect();
        assert!(false_ids.iter().all(|r| a.reports.contains(r)));
    }
}

#[cfg(test)]
mod deployment_tests {
    use super::*;
    use crate::config::DeploymentSpec;
    use gbd_core::params::SystemParams;

    #[test]
    fn grid_deployment_runs_and_differs_from_uniform() {
        let base = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(1)
            .with_seed(4);
        let uniform = run_trial(&base, 0);
        let grid = run_trial(
            &base
                .clone()
                .with_deployment(DeploymentSpec::Grid { jitter: 0.0 }),
            0,
        );
        // Same trajectory stream position differs (grid consumes no RNG for
        // placement when jitter = 0), so just assert both produce sane
        // outcomes and different report patterns.
        assert_eq!(uniform.trajectory.periods(), 20);
        assert_eq!(grid.trajectory.periods(), 20);
        assert_ne!(uniform.reports, grid.reports);
    }

    #[test]
    fn first_detection_period_consistent_with_detection() {
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(1)
            .with_seed(8);
        for trial in 0..30 {
            let out = run_trial(&cfg, trial);
            match out.first_detection_period(5) {
                Some(p) => {
                    assert!(out.detected(5));
                    assert!((1..=20).contains(&p));
                    // Exactly 5 reports had occurred by period p, at most 4 before.
                    let before: usize = out
                        .reports
                        .iter()
                        .filter(|r| r.is_true_detection() && r.period < p)
                        .count();
                    assert!(before < 5);
                }
                None => assert!(!out.detected(5)),
            }
        }
    }

    #[test]
    fn first_detection_period_k_zero() {
        let cfg = SimConfig::new(SystemParams::paper_defaults())
            .with_trials(1)
            .with_seed(8);
        let out = run_trial(&cfg, 0);
        assert_eq!(out.first_detection_period(0), Some(0));
    }
}
