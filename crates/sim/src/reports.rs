//! Detection reports.

use gbd_field::sensor::SensorId;
use gbd_geometry::point::Point;

/// Why a report was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// The sensor covered the real target and its detector fired.
    TrueDetection,
    /// Environmental noise: a node-level false alarm.
    FalseAlarm,
}

/// A node-level detection report: sensor, sensing period (1-based) and the
/// sensor's position (what the base station knows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionReport {
    /// Reporting sensor.
    pub sensor: SensorId,
    /// Sensing period in which the report was generated (1-based).
    pub period: usize,
    /// Position of the reporting sensor.
    pub position: Point,
    /// Whether the report was caused by the target or by noise.
    pub kind: ReportKind,
}

impl DetectionReport {
    /// Convenience constructor.
    pub fn new(sensor: SensorId, period: usize, position: Point, kind: ReportKind) -> Self {
        DetectionReport {
            sensor,
            period,
            position,
            kind,
        }
    }

    /// Whether the report stems from the real target.
    pub fn is_true_detection(&self) -> bool {
        self.kind == ReportKind::TrueDetection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicate() {
        let t = DetectionReport::new(SensorId(1), 3, Point::ORIGIN, ReportKind::TrueDetection);
        let f = DetectionReport::new(SensorId(2), 3, Point::ORIGIN, ReportKind::FalseAlarm);
        assert!(t.is_true_detection());
        assert!(!f.is_true_detection());
    }
}
