//! Energy accounting and the detection-vs-lifetime trade-off.
//!
//! The paper's §5 situates itself against node-scheduling work whose whole
//! point is that "sacrificing a little coverage can substantially increase
//! network lifetime". With duty cycling already in the simulator (and
//! analytically equivalent to scaling `Pd`), this module adds the energy
//! side so the trade-off can be computed end to end: per-period energy of
//! a duty-cycled sensor (sensing + sleeping + report traffic over the
//! multi-hop network), the implied network lifetime, and the
//! detection-probability/lifetime frontier.

use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::CoreError;

/// Per-period energy costs of one sensor, in joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one awake sensing period (sampling + processing).
    pub sense_j: f64,
    /// Energy of one sleeping period (clock + wakeup timer).
    pub sleep_j: f64,
    /// Energy to transmit or forward one report over one hop.
    pub tx_j: f64,
    /// Usable battery capacity in joules.
    pub battery_j: f64,
}

impl EnergyModel {
    /// A battery-powered acoustic node: sensing is expensive (active
    /// sonar processing ~1 J/min), sleep is cheap, acoustic transmission
    /// costs ~0.5 J per report-hop, 200 kJ usable battery (~50 Wh).
    pub fn undersea_acoustic() -> Self {
        EnergyModel {
            sense_j: 1.0,
            sleep_j: 0.01,
            tx_j: 0.5,
            battery_j: 200_000.0,
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any cost is negative or
    /// the battery is not positive.
    pub fn validate(&self) -> Result<(), CoreError> {
        let ok = self.sense_j >= 0.0
            && self.sleep_j >= 0.0
            && self.tx_j >= 0.0
            && self.battery_j > 0.0
            && [self.sense_j, self.sleep_j, self.tx_j, self.battery_j]
                .iter()
                .all(|v| v.is_finite());
        if ok {
            Ok(())
        } else {
            Err(CoreError::InvalidParameter {
                name: "energy model",
                constraint: "costs must be non-negative and battery positive",
            })
        }
    }

    /// Mean energy one sensor spends per sensing period at duty cycle
    /// `duty`, including its share of report traffic.
    ///
    /// `reports_per_sensor_period` is the sensor's own report rate;
    /// `mean_hops` is the average route length to the base station, so
    /// each report costs `mean_hops` transmissions spread across the
    /// network (to first order every sensor forwards as much as it
    /// originates times the hop count).
    pub fn energy_per_period(
        &self,
        duty: f64,
        reports_per_sensor_period: f64,
        mean_hops: f64,
    ) -> f64 {
        duty * self.sense_j
            + (1.0 - duty) * self.sleep_j
            + reports_per_sensor_period * mean_hops * self.tx_j
    }

    /// Expected lifetime in sensing periods at the given per-period
    /// energy.
    pub fn lifetime_periods(&self, energy_per_period: f64) -> f64 {
        if energy_per_period <= 0.0 {
            return f64::INFINITY;
        }
        self.battery_j / energy_per_period
    }
}

/// One point of the detection-vs-lifetime frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Duty cycle (fraction of periods awake).
    pub duty: f64,
    /// Window detection probability at this duty cycle (analysis with
    /// `Pd' = Pd · duty`).
    pub detection_probability: f64,
    /// Expected node lifetime in sensing periods.
    pub lifetime_periods: f64,
}

/// Computes the detection-vs-lifetime frontier over the given duty cycles.
///
/// Detection uses the M-S-approach with the duty-scaled `Pd` (validated
/// against duty-cycled simulation in `tests/extensions.rs`); the sensor's
/// own report rate is `duty · Pd · M · |DR| / (M·S)` per period — the mean
/// report count divided over the window — which at sparse densities is a
/// negligible energy term next to sensing, exactly why duty cycling is the
/// lever that matters.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for an invalid energy model,
/// an empty or out-of-range duty list, or a failed analysis.
pub fn duty_cycle_tradeoff(
    params: &SystemParams,
    energy: &EnergyModel,
    mean_hops: f64,
    duties: &[f64],
    opts: &MsOptions,
) -> Result<Vec<TradeoffPoint>, CoreError> {
    energy.validate()?;
    if duties.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "duties",
            constraint: "need at least one duty cycle",
        });
    }
    if duties.iter().any(|d| !(0.0..=1.0).contains(d)) {
        return Err(CoreError::InvalidParameter {
            name: "duties",
            constraint: "duty cycles must lie in [0, 1]",
        });
    }
    let mut out = Vec::with_capacity(duties.len());
    for &duty in duties {
        let effective = params.with_pd(params.pd() * duty);
        let detection = analyze(&effective, opts)?.detection_probability(params.k());
        // Own report rate per sensor-period: Pd'·|DR|/S.
        let report_rate = effective.pd() * params.dr_area() / params.field_area();
        let e = energy.energy_per_period(duty, report_rate, mean_hops);
        out.push(TradeoffPoint {
            duty,
            detection_probability: detection,
            lifetime_periods: energy.lifetime_periods(e),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::undersea_acoustic()
    }

    #[test]
    fn validation_catches_bad_models() {
        assert!(model().validate().is_ok());
        let mut bad = model();
        bad.battery_j = 0.0;
        assert!(bad.validate().is_err());
        bad = model();
        bad.tx_j = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn energy_components_add_up() {
        let m = EnergyModel {
            sense_j: 2.0,
            sleep_j: 0.5,
            tx_j: 10.0,
            battery_j: 100.0,
        };
        // duty 0.25: 0.25·2 + 0.75·0.5 + 0.01·3·10 = 0.5 + 0.375 + 0.3
        let e = m.energy_per_period(0.25, 0.01, 3.0);
        assert!((e - 1.175).abs() < 1e-12);
        assert!((m.lifetime_periods(e) - 100.0 / 1.175).abs() < 1e-9);
    }

    #[test]
    fn zero_energy_is_immortal() {
        assert_eq!(model().lifetime_periods(0.0), f64::INFINITY);
    }

    #[test]
    fn frontier_is_monotone_both_ways() {
        let params = SystemParams::paper_defaults().with_n_sensors(240);
        let duties = [0.2, 0.4, 0.6, 0.8, 1.0];
        let pts = duty_cycle_tradeoff(&params, &model(), 3.0, &duties, &MsOptions::default())
            .unwrap();
        for w in pts.windows(2) {
            assert!(w[1].detection_probability > w[0].detection_probability);
            assert!(w[1].lifetime_periods < w[0].lifetime_periods);
        }
    }

    #[test]
    fn related_work_claim_direction_holds() {
        // "Sacrificing a little coverage can substantially increase network
        // lifetime": at N = 240, dropping duty from 1.0 to 0.6 costs a
        // few points of detection while extending lifetime by >50%.
        let params = SystemParams::paper_defaults().with_n_sensors(240);
        let pts =
            duty_cycle_tradeoff(&params, &model(), 3.0, &[0.6, 1.0], &MsOptions::default())
                .unwrap();
        let (reduced, full) = (pts[0], pts[1]);
        let detection_loss = full.detection_probability - reduced.detection_probability;
        let lifetime_gain = reduced.lifetime_periods / full.lifetime_periods;
        assert!(detection_loss < 0.10, "loss {detection_loss}");
        assert!(lifetime_gain > 1.5, "gain {lifetime_gain}");
    }

    #[test]
    fn traffic_energy_is_negligible_in_sparse_regime() {
        // The report-forwarding term is orders of magnitude below sensing:
        // the paper's rare-event sparse scenario makes sensing the budget.
        let params = SystemParams::paper_defaults();
        let report_rate = params.pd() * params.dr_area() / params.field_area();
        let m = model();
        let traffic = report_rate * 6.0 * m.tx_j;
        assert!(traffic < 0.05 * m.sense_j, "traffic {traffic}");
    }

    #[test]
    fn rejects_bad_duties() {
        let params = SystemParams::paper_defaults();
        assert!(
            duty_cycle_tradeoff(&params, &model(), 3.0, &[], &MsOptions::default()).is_err()
        );
        assert!(
            duty_cycle_tradeoff(&params, &model(), 3.0, &[1.5], &MsOptions::default()).is_err()
        );
    }
}
