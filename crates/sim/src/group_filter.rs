//! The concrete group-based detection algorithm: track-feasibility
//! filtering.
//!
//! The paper abstracts group detection as "a sequence of at least `k`
//! detection reports within `M` sensing periods **that can be mapped to a
//! possible target track**". This module implements the mapping test the
//! base station would actually run: a report sequence is track-feasible if
//! some target moving at most `v_max` could have triggered every report —
//! i.e. consecutive reports' sensors are mutually reachable:
//!
//! `dist(pos_i, pos_j) <= v_max · t · (period_j − period_i + 1) + 2·Rs`
//!
//! (each sensor sees the target anywhere within `Rs` of the segment its
//! period covers, hence the `+1` period and the `2·Rs` slack). The longest
//! feasible chain is found by DP in `O(R²)`; detection fires when a chain
//! of length `>= k` fits inside an `M`-period window.
//!
//! True-target reports always form a feasible chain; scattered false alarms
//! rarely do — this is exactly the mechanism by which group detection
//! filters system-level false alarms.

use crate::reports::DetectionReport;

/// Feasibility rule linking two reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackRule {
    /// Maximum plausible target speed in m/s.
    pub v_max: f64,
    /// Sensing period length in seconds.
    pub period_s: f64,
    /// Sensing range in meters (adds `2·Rs` slack to the reachability test).
    pub sensing_range: f64,
    /// When set, distances wrap around a `(width, height)` torus — used to
    /// match simulations run under the toroidal boundary policy.
    pub wrap: Option<(f64, f64)>,
}

impl TrackRule {
    /// Creates a rule for a bounded field.
    ///
    /// # Panics
    ///
    /// Panics if any argument is negative or not finite.
    pub fn new(v_max: f64, period_s: f64, sensing_range: f64) -> Self {
        assert!(
            v_max.is_finite() && v_max >= 0.0,
            "v_max must be finite and >= 0"
        );
        assert!(
            period_s.is_finite() && period_s > 0.0,
            "period_s must be finite and > 0"
        );
        assert!(
            sensing_range.is_finite() && sensing_range >= 0.0,
            "sensing_range must be finite and >= 0"
        );
        TrackRule {
            v_max,
            period_s,
            sensing_range,
            wrap: None,
        }
    }

    /// Returns a copy whose distances wrap around a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not finite and positive.
    pub fn with_wrap(mut self, width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "width must be finite and > 0"
        );
        assert!(
            height.is_finite() && height > 0.0,
            "height must be finite and > 0"
        );
        self.wrap = Some((width, height));
        self
    }

    fn distance(&self, a: &DetectionReport, b: &DetectionReport) -> f64 {
        match self.wrap {
            None => a.position.distance(b.position),
            Some((w, h)) => {
                let dx = (a.position.x - b.position.x).abs() % w;
                let dy = (a.position.y - b.position.y).abs() % h;
                let dx = dx.min(w - dx);
                let dy = dy.min(h - dy);
                (dx * dx + dy * dy).sqrt()
            }
        }
    }

    /// Whether report `b` could follow report `a` on one target's track.
    /// Reports in the same period are compatible if their sensors could
    /// have seen the same one-period segment (`V·t + 2·Rs` apart at most).
    pub fn compatible(&self, a: &DetectionReport, b: &DetectionReport) -> bool {
        let dp = b.period.abs_diff(a.period) as f64;
        let reach = self.v_max * self.period_s * (dp + 1.0) + 2.0 * self.sensing_range;
        self.distance(a, b) <= reach
    }
}

/// Length of the longest track-feasible report chain whose periods span
/// less than `m_periods`.
///
/// Chains are non-decreasing in period; all pairs in a chain must be
/// pairwise compatible with the *chain's* timing — we use the standard
/// consecutive-pair relaxation (compatibility with the previous chain
/// element), which true tracks satisfy exactly and which admits only
/// geometrically plausible false-alarm chains.
pub fn longest_feasible_chain(
    reports: &[DetectionReport],
    rule: &TrackRule,
    m_periods: usize,
) -> usize {
    let mut sorted: Vec<&DetectionReport> = reports.iter().collect();
    sorted.sort_by_key(|r| r.period);
    let n = sorted.len();
    let mut best_len = vec![1usize; n];
    // first_period[i]: earliest period of the best chain ending at i, to
    // enforce the M-period window.
    let mut first_period = vec![0usize; n];
    for i in 0..n {
        first_period[i] = sorted[i].period;
    }
    let mut best = 0;
    for i in 0..n {
        for j in 0..i {
            if sorted[j].period > sorted[i].period {
                continue;
            }
            if !rule.compatible(sorted[j], sorted[i]) {
                continue;
            }
            // Window check: extending j's chain keeps its first period.
            if sorted[i].period - first_period[j] >= m_periods {
                continue;
            }
            if best_len[j] + 1 > best_len[i] {
                best_len[i] = best_len[j] + 1;
                first_period[i] = first_period[j];
            }
        }
        best = best.max(best_len[i]);
    }
    if n == 0 {
        0
    } else {
        best
    }
}

/// The system-level group detection decision: does any track-feasible chain
/// of at least `k` reports fit within `m_periods`?
pub fn group_detects(
    reports: &[DetectionReport],
    rule: &TrackRule,
    k: usize,
    m_periods: usize,
) -> bool {
    if reports.len() < k {
        return false;
    }
    longest_feasible_chain(reports, rule, m_periods) >= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reports::ReportKind;
    use gbd_field::sensor::SensorId;
    use gbd_geometry::point::Point;

    fn report(id: usize, period: usize, x: f64, y: f64) -> DetectionReport {
        DetectionReport::new(
            SensorId(id),
            period,
            Point::new(x, y),
            ReportKind::TrueDetection,
        )
    }

    fn rule() -> TrackRule {
        // Paper parameters: v_max 10 m/s, t = 60 s, Rs = 1000 m.
        TrackRule::new(10.0, 60.0, 1000.0)
    }

    #[test]
    fn true_track_chain_is_fully_feasible() {
        // Reports from sensors near a straight track at 600 m per period.
        let reports: Vec<_> = (1..=6)
            .map(|p| report(p, p, 600.0 * p as f64, 100.0))
            .collect();
        assert_eq!(longest_feasible_chain(&reports, &rule(), 20), 6);
        assert!(group_detects(&reports, &rule(), 5, 20));
    }

    #[test]
    fn scattered_false_alarms_do_not_chain() {
        // Reports far apart in space within adjacent periods: infeasible.
        let reports = vec![
            report(1, 1, 0.0, 0.0),
            report(2, 2, 20_000.0, 0.0),
            report(3, 3, 0.0, 20_000.0),
            report(4, 4, 20_000.0, 20_000.0),
            report(5, 5, 10_000.0, 31_000.0),
        ];
        assert!(longest_feasible_chain(&reports, &rule(), 20) < 3);
        assert!(!group_detects(&reports, &rule(), 5, 20));
    }

    #[test]
    fn same_period_reports_need_overlapping_drs() {
        // Same-period reach: V·t + 2·Rs = 600 + 2000 = 2600 m.
        let a = report(1, 1, 0.0, 0.0);
        let near = report(2, 1, 2500.0, 0.0);
        let far = report(3, 1, 2700.0, 0.0);
        assert!(rule().compatible(&a, &near));
        assert!(!rule().compatible(&a, &far));
    }

    #[test]
    fn wrapped_rule_links_across_borders() {
        let wrapped = rule().with_wrap(32_000.0, 32_000.0);
        let a = report(1, 1, 100.0, 0.0);
        let b = report(2, 1, 31_900.0, 0.0); // 200 m away through the wrap
        assert!(!rule().compatible(&a, &b));
        assert!(wrapped.compatible(&a, &b));
    }

    #[test]
    fn window_constraint_splits_long_sequences() {
        // 6 feasible reports but spread over 30 periods with window 5:
        // chains cannot span the window.
        let reports: Vec<_> = (0..6)
            .map(|i| report(i, 1 + i * 6, 100.0 * i as f64, 0.0))
            .collect();
        let longest = longest_feasible_chain(&reports, &rule(), 5);
        assert!(longest <= 1, "got {longest}");
    }

    #[test]
    fn empty_and_small_inputs() {
        assert_eq!(longest_feasible_chain(&[], &rule(), 20), 0);
        assert!(!group_detects(&[], &rule(), 1, 20));
        let one = vec![report(1, 1, 0.0, 0.0)];
        assert_eq!(longest_feasible_chain(&one, &rule(), 20), 1);
        assert!(group_detects(&one, &rule(), 1, 20));
        assert!(!group_detects(&one, &rule(), 2, 20));
    }

    #[test]
    fn stationary_rule_still_chains_repeat_reports() {
        // v_max = 0: only reports within 2·Rs chain (a loitering target
        // seen repeatedly by the same neighborhood).
        let r = TrackRule::new(0.0, 60.0, 1000.0);
        let reports = vec![
            report(1, 1, 0.0, 0.0),
            report(1, 2, 0.0, 0.0),
            report(2, 3, 1500.0, 0.0),
        ];
        assert_eq!(longest_feasible_chain(&reports, &r, 20), 3);
    }

    #[test]
    fn chain_respects_period_ordering() {
        // Compatibility alone would allow hopping backwards; ordering by
        // period forbids it.
        let reports = vec![report(1, 3, 0.0, 0.0), report(2, 1, 100.0, 0.0)];
        assert_eq!(longest_feasible_chain(&reports, &rule(), 20), 2);
        // Both orders in the input give the same answer (sorted internally).
        let rev = vec![reports[1], reports[0]];
        assert_eq!(longest_feasible_chain(&rev, &rule(), 20), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reports::ReportKind;
    use gbd_field::sensor::SensorId;
    use gbd_geometry::point::{Point, Vector};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Reports generated within Rs of a straight constant-speed track
        /// always form one fully feasible chain: the filter never rejects a
        /// genuine target.
        #[test]
        fn true_track_reports_always_chain(
            heading in 0.0f64..std::f64::consts::TAU,
            speed in 1.0f64..12.0,
            offsets in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0, 1usize..20), 2..25),
        ) {
            let rs = 1000.0;
            let period_s = 60.0;
            let dir = Vector::from_heading(heading);
            let reports: Vec<DetectionReport> = offsets
                .iter()
                .enumerate()
                .map(|(i, &(ox, oy, period))| {
                    // Sensor within Rs of the target's mid-period position.
                    let t = period as f64 - 0.5;
                    let on_track = Point::ORIGIN + dir * (speed * period_s * t);
                    let jitter = Vector::new(ox, oy) * (rs / 2.0_f64.sqrt() * 0.99);
                    DetectionReport::new(
                        SensorId(i),
                        period,
                        on_track + jitter,
                        ReportKind::TrueDetection,
                    )
                })
                .collect();
            let rule = TrackRule::new(speed, period_s, rs);
            let longest = longest_feasible_chain(&reports, &rule, 20);
            prop_assert_eq!(longest, reports.len(), "a true track must chain fully");
        }

        /// The longest feasible chain never exceeds the number of reports
        /// and is monotone under adding reports.
        #[test]
        fn chain_length_is_monotone_in_reports(
            xs in proptest::collection::vec((0.0f64..32_000.0, 0.0f64..32_000.0, 1usize..20), 1..20),
        ) {
            let rule = TrackRule::new(10.0, 60.0, 1000.0);
            let reports: Vec<DetectionReport> = xs
                .iter()
                .enumerate()
                .map(|(i, &(x, y, p))| {
                    DetectionReport::new(SensorId(i), p, Point::new(x, y), ReportKind::FalseAlarm)
                })
                .collect();
            let full = longest_feasible_chain(&reports, &rule, 20);
            prop_assert!(full <= reports.len());
            let partial = longest_feasible_chain(&reports[..reports.len() - 1], &rule, 20);
            prop_assert!(partial <= full, "removing a report grew the chain");
        }
    }
}
