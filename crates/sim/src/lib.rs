#![warn(missing_docs)]
//! Monte Carlo validation simulator for group based detection.
//!
//! A Rust reimplementation of the Matlab simulator the paper used to
//! validate its analytical model (§4): every trial randomly deploys `N`
//! sensors, draws a random target track, computes which sensors cover the
//! target in each sensing period, flips a `Pd` coin per covered
//! sensor-period, and declares system-level detection when at least `k`
//! reports accumulate within `M` periods.
//!
//! Beyond the paper's simulator it adds:
//!
//! * seeded, parallel execution with per-trial random streams (results are
//!   a pure function of the master seed, independent of thread count);
//! * [`config::BoundaryPolicy`]-controlled border handling (torus matches
//!   the analysis; bounded quantifies the border effect);
//! * node-level false-alarm injection and the velocity-feasibility
//!   [`group_filter`] that maps report sequences to possible target tracks
//!   (the concrete group-detection algorithm the paper abstracts);
//! * a communication-deadline check ([`comm_check`]) wired to the
//!   `gbd-net` substrate;
//! * constant-velocity [`tracking`] estimation from report positions, with
//!   quality metrics against the ground-truth trajectory (what the
//!   deployed systems the paper cites do after detection);
//! * [`energy`] accounting: the detection-vs-lifetime frontier of
//!   duty-cycled sensing (the §5 related-work trade-off, computed with
//!   this paper's model);
//! * deterministic fault injection ([`faults`]): seeded per-trial node
//!   failures and dropped reports that quantify how gracefully group
//!   based detection degrades on an imperfect network;
//! * [`exposure`]-dependent sensing: the paper's footnote-1 future work,
//!   where `Pd` depends on how far the target travels through the disk.
//!
//! # Example
//!
//! ```
//! use gbd_sim::config::SimConfig;
//! use gbd_sim::runner::run;
//! use gbd_core::params::SystemParams;
//!
//! let params = SystemParams::paper_defaults().with_n_sensors(120);
//! let config = SimConfig::new(params).with_trials(200).with_seed(7);
//! let result = run(&config);
//! assert_eq!(result.trials, 200);
//! assert!(result.detection_probability > 0.0 && result.detection_probability < 1.0);
//! ```

pub mod comm_check;
pub mod config;
pub mod energy;
pub mod engine;
pub mod exposure;
pub mod false_alarm;
pub mod faults;
pub mod group_filter;
pub mod render;
pub mod reports;
pub mod runner;
pub mod tracking;
