//! Exposure-dependent sensing — the paper's footnote 1, revisited.
//!
//! Footnote 1: "We assume that Pd is independent of the length the target
//! overlaps with the sensing range in a sensing period primarily for ease
//! of analysis. This assumption will be revisited and revised in future
//! work." Here the revision: a sensor whose disk the target crosses for a
//! length `len` detects with
//!
//! `p(len) = 1 − exp(−len / ell)`
//!
//! (a Poisson detection process along the path — grazing crossings are
//! hard, diameter crossings nearly certain). [`calibrate_ell`] solves for
//! the `ell` at which the *average* per-covered-period detection
//! probability equals the paper's `Pd`, so the uniform and exposure models
//! are matched in the mean and differ only in spatial structure; the
//! `exposure_model` experiment measures how much that structure moves the
//! system-level detection probability.

use crate::config::SimConfig;
use gbd_core::params::SystemParams;
use gbd_field::deployment::{Deployer, UniformRandom};
use gbd_field::field::SensorField;
use gbd_geometry::montecarlo::sample_point;
use gbd_geometry::point::{Aabb, Point, Segment};
use gbd_geometry::stadium::{segment_disk_overlap, Stadium};
use gbd_motion::straight::StraightLine;
use gbd_motion::trajectory::MotionModel;
use gbd_stats::rng::{rng_stream, Rng};
use rand::Rng as _;

/// Detection probability for one covered period under the exposure model.
pub fn detection_probability_given_overlap(overlap_m: f64, ell: f64) -> f64 {
    assert!(ell > 0.0, "ell must be positive");
    1.0 - (-overlap_m.max(0.0) / ell).exp()
}

/// Mean per-covered-period detection probability of the exposure model for
/// a sensor placed uniformly in a one-period Detectable Region, estimated
/// by Monte Carlo.
pub fn mean_detection_probability(
    params: &SystemParams,
    ell: f64,
    samples: u64,
    seed: u64,
) -> f64 {
    let rs = params.sensing_range();
    let step = params.step();
    let seg = Segment::new(Point::ORIGIN, Point::new(step, 0.0));
    let dr = Stadium::new(seg.a, seg.b, rs);
    let bounds = dr.bounding_box();
    let mut rng = rng_stream(seed, 0);
    let mut total = 0.0;
    let mut hits = 0u64;
    while hits < samples {
        let p = sample_point(&bounds, &mut rng);
        if !dr.contains(p) {
            continue;
        }
        hits += 1;
        total +=
            detection_probability_given_overlap(segment_disk_overlap(seg.a, seg.b, p, rs), ell);
    }
    total / samples as f64
}

/// Solves for the exposure scale `ell` at which the mean per-covered-period
/// detection probability equals `params.pd()`, by bisection.
///
/// # Panics
///
/// Panics if `params.pd()` is not strictly between 0 and 1.
pub fn calibrate_ell(params: &SystemParams, samples: u64, seed: u64) -> f64 {
    let target = params.pd();
    assert!(
        target > 0.0 && target < 1.0,
        "pd must be in (0, 1) for calibration"
    );
    // Mean p decreases in ell; bracket generously.
    let mut lo = params.sensing_range() * 1e-4;
    let mut hi = params.sensing_range() * 20.0;
    for _ in 0..50 {
        let mid = (lo * hi).sqrt(); // geometric bisection: ell spans decades
        if mean_detection_probability(params, mid, samples, seed) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

/// Simulated window detection probability under the exposure model
/// (straight-line target, toroidal field, same trial procedure as the
/// engine).
pub fn simulate_exposure(config: &SimConfig, ell: f64) -> f64 {
    let params = &config.params;
    let w = params.field_width();
    let h = params.field_height();
    let extent = Aabb::from_extent(w, h);
    let model = StraightLine::new(params.speed());
    let mut detections = 0u64;
    let mut field = SensorField::new(extent, Vec::new(), config.boundary);
    let mut hits = Vec::new();
    for trial in 0..config.trials {
        let mut rng: Rng = rng_stream(config.seed, trial);
        let rng_ref = &mut rng;
        let traj = field.rebuild_focused(extent, config.boundary, |buf| {
            UniformRandom.deploy_into(params.n_sensors(), &extent, rng_ref, buf);
            let start = Point::new(rng_ref.gen_range(0.0..w), rng_ref.gen_range(0.0..h));
            let heading = rng_ref.gen_range(0.0..std::f64::consts::TAU);
            let traj = model.generate(
                start,
                heading,
                params.period_s(),
                params.m_periods(),
                rng_ref,
            );
            let mut focus = Aabb {
                min: start,
                max: start,
            };
            for period in 1..=params.m_periods() {
                let dr = traj.detectable_region(period, params.sensing_range());
                focus = focus.union(&dr.bounding_box());
            }
            (focus, traj)
        });
        let mut reports = 0usize;
        for period in 1..=params.m_periods() {
            let seg = traj.segment(period);
            let dr = traj.detectable_region(period, params.sensing_range());
            field.query_stadium_into(&dr, &mut hits);
            for &id in hits.iter() {
                let pos = field.sensor(id).pos;
                // Use the periodic image of the sensor actually inside the DR.
                let overlap = best_image_overlap(&seg, pos, w, h, params.sensing_range());
                let p = detection_probability_given_overlap(overlap, ell);
                if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                    reports += 1;
                }
            }
        }
        if reports >= params.k() {
            detections += 1;
        }
    }
    detections as f64 / config.trials as f64
}

/// Exposure length using the sensor image closest to the segment (torus).
fn best_image_overlap(seg: &Segment, sensor: Point, w: f64, h: f64, rs: f64) -> f64 {
    let mid = seg.midpoint();
    let mut dx = sensor.x - mid.x;
    let mut dy = sensor.y - mid.y;
    dx -= (dx / w).round() * w;
    dy -= (dy / h).round() * h;
    segment_disk_overlap(seg.a, seg.b, Point::new(mid.x + dx, mid.y + dy), rs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn p_of_overlap_shape() {
        assert_eq!(detection_probability_given_overlap(0.0, 100.0), 0.0);
        assert!(detection_probability_given_overlap(1e9, 100.0) > 0.999_999);
        // Monotone in overlap, decreasing in ell.
        assert!(
            detection_probability_given_overlap(200.0, 100.0)
                > detection_probability_given_overlap(100.0, 100.0)
        );
        assert!(
            detection_probability_given_overlap(100.0, 50.0)
                > detection_probability_given_overlap(100.0, 100.0)
        );
    }

    #[test]
    fn mean_probability_decreases_in_ell() {
        let params = paper();
        let lo = mean_detection_probability(&params, 50.0, 20_000, 1);
        let hi = mean_detection_probability(&params, 2_000.0, 20_000, 1);
        assert!(lo > hi, "{lo} vs {hi}");
    }

    #[test]
    fn calibration_hits_the_target_pd() {
        let params = paper();
        let ell = calibrate_ell(&params, 20_000, 2);
        let achieved = mean_detection_probability(&params, ell, 40_000, 3);
        assert!(
            (achieved - 0.9).abs() < 0.02,
            "ell={ell}: mean p {achieved}"
        );
        // The calibrated scale is a small fraction of the sensing range:
        // most crossings are long compared to it, as Pd = 0.9 demands.
        assert!(ell < params.sensing_range(), "ell={ell}");
    }

    #[test]
    fn tiny_ell_approaches_the_pd_one_model() {
        // ell -> 0: every covered period detects; compare with the exact
        // model at pd = 1.
        let params = paper().with_n_sensors(120);
        let config = crate::config::SimConfig::new(params)
            .with_trials(1_500)
            .with_seed(11);
        let sim = simulate_exposure(&config, 1e-6);
        let exact = gbd_core::exact::detection_probability(&params.with_pd(1.0), params.k());
        let se = (exact * (1.0 - exact) / 1_500.0f64).sqrt();
        assert!(
            (sim - exact).abs() < 4.0 * se + 0.02,
            "sim {sim:.4} vs exact {exact:.4}"
        );
    }

    #[test]
    fn calibrated_exposure_stays_near_the_uniform_model() {
        // The headline footnote-1 result: matching the mean detection
        // probability keeps the system-level answer within a couple of
        // points, so the paper's simplification is benign at its settings.
        let params = paper().with_n_sensors(150);
        let ell = calibrate_ell(&params, 20_000, 4);
        let config = crate::config::SimConfig::new(params)
            .with_trials(2_000)
            .with_seed(12);
        let exposure = simulate_exposure(&config, ell);
        let uniform = gbd_core::exact::detection_probability(&params, params.k());
        assert!(
            (exposure - uniform).abs() < 0.05,
            "exposure {exposure:.4} vs uniform {uniform:.4}"
        );
    }
}
