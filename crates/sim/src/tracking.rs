//! Track estimation from detection reports.
//!
//! Group based detection ends with a binary decision; the deployed systems
//! the paper cites (VigilNet, EnviroTrack) go one step further and
//! *estimate the target's track* from the reports. This module closes that
//! loop: a weighted least-squares fit of a constant-velocity track to the
//! report positions, plus the quality metrics used to evaluate it against
//! the simulator's ground-truth trajectories.
//!
//! Each report constrains the target to within `Rs` of its sensor during
//! its period, so individual reports are coarse; the fit averages the
//! error down roughly with `Rs / sqrt(R)` for `R` reports.

use crate::reports::DetectionReport;
use gbd_geometry::point::{Point, Vector};
use gbd_motion::trajectory::Trajectory;

/// A constant-velocity track estimate: `position(t) = origin + velocity·t`
/// with `t` measured in sensing periods (the report's period midpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackEstimate {
    /// Estimated position at `t = 0` (start of period 1).
    pub origin: Point,
    /// Estimated displacement per sensing period.
    pub velocity: Vector,
    /// Number of reports used.
    pub reports_used: usize,
}

impl TrackEstimate {
    /// Estimated position at the *end* of period `l` (1-based), matching
    /// [`Trajectory::position`] indexing.
    pub fn position_at(&self, l: usize) -> Point {
        self.origin + self.velocity * l as f64
    }

    /// Estimated speed in meters per period.
    pub fn speed_per_period(&self) -> f64 {
        self.velocity.norm()
    }

    /// Estimated heading in radians.
    ///
    /// # Panics
    ///
    /// Panics if the estimated velocity is zero.
    pub fn heading(&self) -> f64 {
        self.velocity.heading()
    }
}

/// Fits a constant-velocity track to the reports by least squares over
/// `(period midpoint, sensor position)` pairs.
///
/// Returns `None` when fewer than two distinct periods report (the
/// velocity is unobservable).
///
/// # Example
///
/// ```
/// use gbd_sim::reports::{DetectionReport, ReportKind};
/// use gbd_sim::tracking::fit_track;
/// use gbd_field::sensor::SensorId;
/// use gbd_geometry::point::Point;
///
/// // Reports from sensors sitting exactly on a 600 m-per-period track.
/// let reports: Vec<_> = (1..=5)
///     .map(|p| DetectionReport::new(
///         SensorId(p),
///         p,
///         Point::new(600.0 * (p as f64 - 0.5), 0.0),
///         ReportKind::TrueDetection,
///     ))
///     .collect();
/// let track = fit_track(&reports).expect("enough reports");
/// assert!((track.speed_per_period() - 600.0).abs() < 1e-9);
/// ```
pub fn fit_track(reports: &[DetectionReport]) -> Option<TrackEstimate> {
    if reports.len() < 2 {
        return None;
    }
    // t_i = period midpoint (period − 0.5), x_i/y_i = sensor position.
    let n = reports.len() as f64;
    let mut st = 0.0;
    let mut stt = 0.0;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut stx = 0.0;
    let mut sty = 0.0;
    let mut periods = std::collections::HashSet::new();
    for r in reports {
        let t = r.period as f64 - 0.5;
        periods.insert(r.period);
        st += t;
        stt += t * t;
        sx += r.position.x;
        sy += r.position.y;
        stx += t * r.position.x;
        sty += t * r.position.y;
    }
    if periods.len() < 2 {
        return None;
    }
    let det = n * stt - st * st;
    if det.abs() < 1e-9 {
        return None;
    }
    let vx = (n * stx - st * sx) / det;
    let vy = (n * sty - st * sy) / det;
    let x0 = (sx - vx * st) / n;
    let y0 = (sy - vy * st) / n;
    Some(TrackEstimate {
        origin: Point::new(x0, y0),
        velocity: Vector::new(vx, vy),
        reports_used: reports.len(),
    })
}

/// Fits a track to reports whose positions may wrap around a
/// `width × height` torus (the simulator's analysis-matching boundary).
///
/// Positions are unwrapped by continuity before fitting: the first report
/// anchors the frame, and every subsequent report takes the periodic image
/// closest to the running unwrapped centroid — valid because consecutive
/// on-track reports are far closer together than half the field.
///
/// Returns `None` under the same conditions as [`fit_track`].
pub fn fit_track_wrapped(
    reports: &[DetectionReport],
    width: f64,
    height: f64,
) -> Option<TrackEstimate> {
    if reports.len() < 2 {
        return None;
    }
    let mut sorted: Vec<DetectionReport> = reports.to_vec();
    sorted.sort_by_key(|r| r.period);
    let mut unwrapped = Vec::with_capacity(sorted.len());
    let mut anchor = sorted[0].position;
    for r in &mut sorted {
        let mut dx = r.position.x - anchor.x;
        let mut dy = r.position.y - anchor.y;
        dx -= (dx / width).round() * width;
        dy -= (dy / height).round() * height;
        let p = Point::new(anchor.x + dx, anchor.y + dy);
        // Advance the anchor smoothly so long tracks keep unwrapping.
        anchor = Point::new((anchor.x + p.x) / 2.0, (anchor.y + p.y) / 2.0);
        r.position = p;
        unwrapped.push(*r);
    }
    fit_track(&unwrapped)
}

/// Quality of a track estimate against the ground-truth trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackQuality {
    /// Root-mean-square position error over the period boundaries covered
    /// by reports.
    pub position_rmse: f64,
    /// Absolute speed error in meters per period.
    pub speed_error: f64,
    /// Absolute heading error in radians (`0..=π`).
    pub heading_error: f64,
}

/// Evaluates an estimate against the true trajectory over periods
/// `first ..= last`.
///
/// # Panics
///
/// Panics if the period range is empty or exceeds the trajectory.
pub fn evaluate(
    estimate: &TrackEstimate,
    truth: &Trajectory,
    first: usize,
    last: usize,
) -> TrackQuality {
    assert!(
        first >= 1 && first <= last && last <= truth.periods(),
        "invalid period range"
    );
    let mut sq = 0.0;
    let mut count = 0;
    for l in first..=last {
        let err = estimate.position_at(l).distance(truth.position(l));
        sq += err * err;
        count += 1;
    }
    let true_step = truth.position(last) - truth.position(first - 1);
    let true_velocity = true_step / (last - first + 1) as f64;
    let speed_error = (estimate.speed_per_period() - true_velocity.norm()).abs();
    let heading_error = if true_velocity.norm() > 0.0 && estimate.speed_per_period() > 0.0 {
        let mut d = (estimate.heading() - true_velocity.heading()).abs();
        if d > std::f64::consts::PI {
            d = 2.0 * std::f64::consts::PI - d;
        }
        d
    } else {
        0.0
    };
    TrackQuality {
        position_rmse: (sq / count as f64).sqrt(),
        speed_error,
        heading_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::run_trial;
    use crate::reports::ReportKind;
    use gbd_core::params::SystemParams;
    use gbd_field::sensor::SensorId;

    fn report(period: usize, x: f64, y: f64) -> DetectionReport {
        DetectionReport::new(
            SensorId(period),
            period,
            Point::new(x, y),
            ReportKind::TrueDetection,
        )
    }

    #[test]
    fn perfect_reports_recover_the_track() {
        let reports: Vec<_> = (1..=6)
            .map(|p| report(p, 600.0 * (p as f64 - 0.5), 100.0))
            .collect();
        let t = fit_track(&reports).unwrap();
        assert!((t.speed_per_period() - 600.0).abs() < 1e-9);
        assert!(t.heading().abs() < 1e-9);
        assert!((t.origin.y - 100.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_or_degenerate_reports_yield_none() {
        assert!(fit_track(&[]).is_none());
        assert!(fit_track(&[report(1, 0.0, 0.0)]).is_none());
        // Two reports in the same period: velocity unobservable.
        let same = [report(3, 0.0, 0.0), report(3, 100.0, 0.0)];
        assert!(fit_track(&same).is_none());
    }

    #[test]
    fn noise_averages_out_with_more_reports() {
        // Reports displaced alternately ±800 m: the fit splits the error.
        let noisy: Vec<_> = (1..=10)
            .map(|p| {
                let off = if p % 2 == 0 { 800.0 } else { -800.0 };
                report(p, 600.0 * (p as f64 - 0.5), off)
            })
            .collect();
        let t = fit_track(&noisy).unwrap();
        assert!((t.speed_per_period() - 600.0).abs() < 30.0);
        assert!(t.origin.y.abs() < 300.0);
    }

    #[test]
    fn end_to_end_estimation_on_simulated_detections() {
        // Run real trials; whenever the system detects (>= 5 reports over
        // >= 2 periods), the fitted track should estimate heading within
        // ~0.5 rad and speed within ~40% — coarse sensors, useful track.
        let params = SystemParams::paper_defaults().with_n_sensors(240);
        let cfg = SimConfig::new(params)
            .with_trials(1)
            .with_seed(2024)
            .with_boundary(crate::config::BoundaryPolicy::Bounded);
        let mut evaluated = 0;
        let mut heading_ok = 0;
        for trial in 0..120 {
            let out = run_trial(&cfg, trial);
            if out.true_reports < 5 {
                continue;
            }
            let Some(est) = fit_track(&out.reports) else {
                continue;
            };
            let first = out.reports.first().unwrap().period;
            let last = out.reports.last().unwrap().period;
            if first == last {
                continue;
            }
            let q = evaluate(&est, &out.trajectory, first, last);
            evaluated += 1;
            if q.heading_error < 0.5 {
                heading_ok += 1;
            }
            // Position error is bounded by a few sensing ranges.
            assert!(
                q.position_rmse < 4.0 * params.sensing_range(),
                "trial {trial}: rmse {}",
                q.position_rmse
            );
        }
        assert!(evaluated > 40, "only {evaluated} trials evaluated");
        assert!(
            heading_ok as f64 >= 0.8 * evaluated as f64,
            "heading good in {heading_ok}/{evaluated}"
        );
    }

    #[test]
    fn more_sensors_give_better_tracks() {
        // Average position RMSE over detected trials decreases with N.
        let rmse_for = |n: usize| {
            let params = SystemParams::paper_defaults().with_n_sensors(n);
            let cfg = SimConfig::new(params)
                .with_trials(1)
                .with_seed(99)
                .with_boundary(crate::config::BoundaryPolicy::Bounded);
            let mut total = 0.0;
            let mut count = 0;
            for trial in 0..150 {
                let out = run_trial(&cfg, trial);
                let Some(est) = fit_track(&out.reports) else {
                    continue;
                };
                if out.true_reports < 5 {
                    continue;
                }
                let first = out.reports.first().unwrap().period;
                let last = out.reports.last().unwrap().period;
                if first == last {
                    continue;
                }
                total += evaluate(&est, &out.trajectory, first, last).position_rmse;
                count += 1;
            }
            total / count as f64
        };
        let coarse = rmse_for(90);
        let fine = rmse_for(240);
        assert!(fine < coarse, "rmse N=240 {fine} vs N=90 {coarse}");
    }

    #[test]
    fn wrapped_fit_handles_border_crossing_reports() {
        // A track crossing x = 0 on a 32 km torus: raw positions jump by
        // the field width; the wrapped fit recovers the true velocity.
        let w = 32_000.0;
        let reports: Vec<_> = (1..=6)
            .map(|p| {
                let x = -1_500.0 + 600.0 * (p as f64 - 0.5); // crosses 0
                report(p, x.rem_euclid(w), 50.0)
            })
            .collect();
        assert!(fit_track(&reports).unwrap().speed_per_period() > 5_000.0); // raw: garbage
        let t = fit_track_wrapped(&reports, w, w).unwrap();
        assert!(
            (t.speed_per_period() - 600.0).abs() < 1e-6,
            "{}",
            t.speed_per_period()
        );
    }

    #[test]
    fn position_at_matches_linear_motion() {
        let t = TrackEstimate {
            origin: Point::new(10.0, 20.0),
            velocity: Vector::new(5.0, -2.0),
            reports_used: 4,
        };
        assert_eq!(t.position_at(3), Point::new(25.0, 14.0));
    }

    #[test]
    #[should_panic(expected = "invalid period range")]
    fn evaluate_rejects_bad_range() {
        let t = TrackEstimate {
            origin: Point::ORIGIN,
            velocity: Vector::new(1.0, 0.0),
            reports_used: 2,
        };
        let traj = Trajectory::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
        evaluate(&t, &traj, 1, 5);
    }
}
