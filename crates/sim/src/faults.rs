//! Deterministic sensor-level fault injection (the simulator half of the
//! chaos harness; the engine half lives in `gbd_engine::chaos`).
//!
//! A [`FaultPlan`] makes the simulated network imperfect in two ways the
//! paper's analysis assumes away: **node failures** (a sensor is dead for
//! a whole trial — it neither detects nor misfires) and **report drops**
//! (a detection happens but its report never reaches the base station,
//! e.g. a lost radio packet). Both are pure functions of
//! `(plan seed, trial, sensor [, period])`, hashed independently of the
//! trial's own RNG stream — injecting faults never shifts the random
//! numbers the unfaulted part of the trial consumes, so the set of
//! surviving reports of a faulted run is exactly a subset of the
//! fault-free run's.

use gbd_core::CoreError;

/// Seeded fault model applied to every trial of a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault hash (independent of the simulation seed).
    pub seed: u64,
    /// Probability that a sensor is dead for an entire trial.
    pub node_failure_rate: f64,
    /// Probability that an individual detection report is lost in
    /// transit.
    pub report_drop_rate: f64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            node_failure_rate: 0.0,
            report_drop_rate: 0.0,
        }
    }

    /// Sets the per-trial node failure rate, or
    /// [`CoreError::InvalidParameter`] if it is outside `[0, 1]`.
    pub fn try_with_node_failure_rate(mut self, rate: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "node_failure_rate",
                constraint: "must be in [0, 1]",
            });
        }
        self.node_failure_rate = rate;
        Ok(self)
    }

    /// Sets the per-trial node failure rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]`; see
    /// [`FaultPlan::try_with_node_failure_rate`] for the fallible form.
    #[must_use]
    pub fn with_node_failure_rate(self, rate: f64) -> Self {
        self.try_with_node_failure_rate(rate)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the per-report drop rate, or [`CoreError::InvalidParameter`]
    /// if it is outside `[0, 1]`.
    pub fn try_with_report_drop_rate(mut self, rate: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "report_drop_rate",
                constraint: "must be in [0, 1]",
            });
        }
        self.report_drop_rate = rate;
        Ok(self)
    }

    /// Sets the per-report drop rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]`; see
    /// [`FaultPlan::try_with_report_drop_rate`] for the fallible form.
    #[must_use]
    pub fn with_report_drop_rate(self, rate: f64) -> Self {
        self.try_with_report_drop_rate(rate)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether this plan injects nothing (the engine skips the fault
    /// checks entirely then).
    pub fn is_inert(&self) -> bool {
        self.node_failure_rate == 0.0 && self.report_drop_rate == 0.0
    }

    /// Whether `sensor` is dead for all of `trial`.
    pub fn node_failed(&self, trial: u64, sensor: usize) -> bool {
        self.node_failure_rate > 0.0
            && coin(
                self.seed ^ 0x4E4F_4445u64,
                trial,
                sensor as u64,
                0,
                self.node_failure_rate,
            )
    }

    /// Whether the report of `sensor` in `period` of `trial` is lost in
    /// transit.
    pub fn report_dropped(&self, trial: u64, sensor: usize, period: usize) -> bool {
        self.report_drop_rate > 0.0
            && coin(
                self.seed ^ 0x4452_4F50u64,
                trial,
                sensor as u64,
                period as u64,
                self.report_drop_rate,
            )
    }
}

/// A Bernoulli coin that is a pure hash of its coordinates: SplitMix64
/// over the mixed-in fields, mapped to `[0, 1)`.
fn coin(seed: u64, trial: u64, sensor: u64, period: u64, rate: f64) -> bool {
    let mut x = seed;
    for word in [trial, sensor, period] {
        x = splitmix64(x ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    // 53 uniform bits, exactly the precision of an f64 mantissa.
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_validate() {
        assert!(FaultPlan::new(1).try_with_node_failure_rate(0.5).is_ok());
        assert!(FaultPlan::new(1).try_with_node_failure_rate(-0.1).is_err());
        assert!(FaultPlan::new(1)
            .try_with_node_failure_rate(f64::NAN)
            .is_err());
        assert!(FaultPlan::new(1).try_with_report_drop_rate(1.0).is_ok());
        assert!(FaultPlan::new(1).try_with_report_drop_rate(1.5).is_err());
    }

    #[test]
    #[should_panic(expected = "node_failure_rate")]
    fn bad_rate_panics() {
        let _ = FaultPlan::new(1).with_node_failure_rate(2.0);
    }

    #[test]
    fn inertness() {
        assert!(FaultPlan::new(7).is_inert());
        assert!(!FaultPlan::new(7).with_node_failure_rate(0.1).is_inert());
        assert!(!FaultPlan::new(7).with_report_drop_rate(0.1).is_inert());
    }

    #[test]
    fn faults_are_deterministic_and_seed_dependent() {
        let plan = FaultPlan::new(42).with_node_failure_rate(0.3);
        let pattern: Vec<bool> = (0..64).map(|s| plan.node_failed(5, s)).collect();
        assert_eq!(
            pattern,
            (0..64).map(|s| plan.node_failed(5, s)).collect::<Vec<_>>()
        );
        let other = FaultPlan::new(43).with_node_failure_rate(0.3);
        assert_ne!(
            pattern,
            (0..64).map(|s| other.node_failed(5, s)).collect::<Vec<_>>()
        );
        // Different trials fail different nodes.
        assert_ne!(
            pattern,
            (0..64).map(|s| plan.node_failed(6, s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn extreme_rates_are_certain() {
        let all = FaultPlan::new(3).with_node_failure_rate(1.0);
        let none = FaultPlan::new(3);
        for s in 0..32 {
            assert!(all.node_failed(0, s));
            assert!(!none.node_failed(0, s));
            assert!(!none.report_dropped(0, s, 1));
        }
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(9).with_report_drop_rate(0.25);
        let mut dropped = 0u32;
        let total = 20_000;
        for trial in 0..20u64 {
            for sensor in 0..50usize {
                for period in 1..=20usize {
                    if plan.report_dropped(trial, sensor, period) {
                        dropped += 1;
                    }
                }
            }
        }
        let rate = f64::from(dropped) / f64::from(total);
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }
}
