//! The cluster acceptance proof: N clients drive a `groupdet route`
//! front end over two real `groupdet serve` shard processes while one
//! shard is SIGKILLed mid-batch. Every request must eventually be
//! answered, every answer must be bit-identical to a single-process
//! evaluation of the same request, and the warm standby must take over
//! the dead shard's hash slots having already applied its replicated
//! store records (`store_loads > 0` — zero recomputed stages for keys
//! the primary had answered).
//!
//! The topology under test:
//!
//! ```text
//! clients ──> router ──> shard0 (primary, --replicate-to standby)
//!                   ──> shard1
//!             standby (--replica-listen, --store) <── shipped records
//! ```

use gbd_serve::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gbd-cluster-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A spawned `groupdet` process that is SIGKILLed on drop so a failing
/// test never leaks servers.
struct Proc {
    child: Child,
    /// The `addr` field of the `--json` listening event.
    addr: String,
    /// The `replica_addr` field, when the process runs a replica listener.
    replica_addr: Option<String>,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `groupdet <args> --json` and blocks until its listening event
/// reports the ephemeral addresses.
fn spawn_groupdet(args: &[&str]) -> Proc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_groupdet"))
        .args(args)
        .arg("--json")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn groupdet");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening event");
    let event = Json::parse(line.trim()).expect("parse listening event");
    assert_eq!(
        event.get("event").and_then(Json::as_str),
        Some("listening"),
        "unexpected first event: {}",
        line.trim()
    );
    let addr = event
        .get("addr")
        .and_then(Json::as_str)
        .expect("listening event has addr")
        .to_string();
    let replica_addr = event
        .get("replica_addr")
        .and_then(Json::as_str)
        .map(str::to_string);
    Proc {
        child,
        addr,
        replica_addr,
    }
}

/// One request line, one response line, on a fresh connection.
fn round_trip(addr: &str, line: &str) -> std::io::Result<Json> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let read_half = stream.try_clone()?;
    let mut writer = stream;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(read_half).read_line(&mut reply)?;
    Json::parse(reply.trim())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// The deterministic request mix: sensor counts cycle over seven values
/// and every tenth request goes to the (seeded, deterministic)
/// simulation backend.
fn request_line(seq: usize) -> String {
    let n = 60 + 30 * (seq % 7);
    let mut fields = vec![
        ("id".to_string(), Json::from(seq as u64)),
        ("verb".to_string(), Json::from("eval")),
        (
            "params".to_string(),
            Json::obj(vec![("n".to_string(), Json::from(n))]),
        ),
    ];
    if seq.is_multiple_of(10) {
        fields.push((
            "backend".to_string(),
            Json::obj(vec![
                ("kind".to_string(), Json::from("sim")),
                ("trials".to_string(), Json::from(20u64)),
                ("seed".to_string(), Json::from(7u64)),
            ]),
        ));
    }
    Json::Obj(fields).render()
}

/// The shape `request_line` builds for `seq`; equal shapes must yield
/// bit-identical detections.
fn shape_key(seq: usize) -> (usize, bool) {
    (60 + 30 * (seq % 7), seq.is_multiple_of(10))
}

/// Sends `seq`'s request through the router, re-sending on transport
/// failures and the two retryable error codes until it is answered.
/// Returns the rendered `detection` — the exact wire text.
fn drive_one(router_addr: &str, seq: usize) -> Result<String, String> {
    let line = request_line(seq);
    for attempt in 0..240u64 {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(25 * attempt.min(8)));
        }
        let Ok(response) = round_trip(router_addr, &line) else {
            continue;
        };
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            return response
                .get("detection")
                .map(Json::render)
                .ok_or_else(|| format!("request {seq}: ok response without detection"));
        }
        let code = response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str);
        if !matches!(code, Some("overloaded") | Some("shard_unavailable")) {
            return Err(format!(
                "request {seq}: non-retryable error {:?}",
                code.unwrap_or("<none>")
            ));
        }
    }
    Err(format!("request {seq}: never answered"))
}

/// Drives `seqs` from `clients` threads through the router and returns
/// every `(seq, detection)` pair, failing if any request gave up.
fn drive_batch(router_addr: &str, seqs: Vec<usize>, clients: usize) -> Vec<(usize, String)> {
    let addr = Arc::new(router_addr.to_string());
    let chunks: Vec<Vec<usize>> = (0..clients)
        .map(|c| seqs.iter().copied().skip(c).step_by(clients).collect())
        .collect();
    let workers: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let addr = Arc::clone(&addr);
            std::thread::spawn(move || {
                chunk
                    .into_iter()
                    .map(|seq| (seq, drive_one(&addr, seq)))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut out = Vec::new();
    for worker in workers {
        for (seq, result) in worker.join().expect("client thread panicked") {
            match result {
                Ok(detection) => out.push((seq, detection)),
                Err(e) => panic!("{e}"),
            }
        }
    }
    out
}

/// Scrapes one numeric field out of a shard's `cluster`/`cache` metrics.
fn metrics_field(addr: &str, section: &str, path: &[&str]) -> Option<u64> {
    let line = format!("{{\"id\":0,\"verb\":\"metrics\",\"sections\":[\"{section}\"]}}");
    let response = round_trip(addr, &line).ok()?;
    let mut node = response.get("metrics")?;
    for key in path {
        node = node.get(key)?;
    }
    node.as_u64()
}

/// Evaluates one representative of every shape in-process — the
/// single-process ground truth the routed answers must match byte for
/// byte. Going through a real `gbd-serve` instance exercises the same
/// parse/render path the shards use.
fn reference_detections(seqs: &[usize]) -> std::collections::HashMap<(usize, bool), String> {
    let mut representatives: Vec<usize> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &seq in seqs {
        if seen.insert(shape_key(seq)) {
            representatives.push(seq);
        }
    }
    let server = gbd_serve::Server::bind(
        gbd_serve::ServeConfig::default(),
        Arc::new(gbd_engine::Engine::new()),
    )
    .expect("bind reference server");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    let mut expected = std::collections::HashMap::new();
    for seq in representatives {
        let response = round_trip(&addr, &request_line(seq)).expect("reference round trip");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "reference request {seq} errored"
        );
        let detection = response.get("detection").expect("reference detection");
        expected.insert(shape_key(seq), detection.render());
    }
    handle.shutdown();
    thread
        .join()
        .expect("reference server panicked")
        .expect("reference server failed");
    expected
}

// ---------------------------------------------------------------------------
// The chaos proof
// ---------------------------------------------------------------------------

#[test]
fn killing_a_shard_mid_run_fails_over_bit_identically() {
    let standby_store = temp_path("standby.gbdstore");
    let shard0_store = temp_path("shard0.gbdstore");

    // Standby: own store, replica listener, not yet routed to.
    let standby = spawn_groupdet(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--store",
        standby_store.to_str().expect("utf-8 temp path"),
        "--replica-listen",
        "127.0.0.1:0",
        "--shard-id",
        "standby0",
    ]);
    let replica_addr = standby
        .replica_addr
        .clone()
        .expect("standby listening event carries replica_addr");

    // Shard 0 ships every store append to the standby; shard 1 is plain.
    let shard0 = spawn_groupdet(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--store",
        shard0_store.to_str().expect("utf-8 temp path"),
        "--shard-id",
        "shard0",
        "--replicate-to",
        &replica_addr,
    ]);
    let shard1 = spawn_groupdet(&["serve", "--addr", "127.0.0.1:0", "--shard-id", "shard1"]);

    let router = spawn_groupdet(&[
        "route",
        "--addr",
        "127.0.0.1:0",
        "--shard",
        &shard0.addr,
        "--shard",
        &shard1.addr,
        "--standby",
        &format!("0:{}", standby.addr),
        "--heartbeat-ms",
        "200",
    ]);

    let clients = 4;
    let total = 80usize;
    let split = 32usize;
    let expected = reference_detections(&(0..total).collect::<Vec<_>>());

    // Phase A: a clean batch before any failure. Shard 0's appends ship
    // to the standby as they happen.
    let before = drive_batch(&router.addr, (0..split).collect(), clients);

    // The standby must have applied replicated records before the kill —
    // that is what makes its takeover warm rather than cold.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let applied = metrics_field(
            &standby.addr,
            "cluster",
            &["cluster", "replication", "applied_records"],
        )
        .unwrap_or(0);
        if applied > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "standby applied no replicated records"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // SIGKILL shard 0 mid-run: no drain, no snapshot, no goodbye.
    {
        let mut shard0 = shard0;
        shard0.child.kill().expect("SIGKILL shard0");
        shard0.child.wait().expect("reap shard0");
    }

    // Phase B: the same mix keeps flowing. Every request must still be
    // answered — the router sheds, retries, trips the breaker, and
    // promotes the standby under this load.
    let after = drive_batch(&router.addr, (split..total).collect(), clients);

    // Bit-identity: every routed answer, before and after the kill,
    // matches the single-process evaluation of its shape byte for byte.
    for (seq, detection) in before.iter().chain(&after) {
        assert_eq!(
            expected.get(&shape_key(*seq)),
            Some(detection),
            "request {seq} diverged from the single-process engine"
        );
    }
    assert_eq!(before.len() + after.len(), total, "a request went missing");

    // The standby now serves shard 0's slots from its replicated store:
    // records it applied over the wire count as store loads, and the
    // router records the failover.
    let store_loads = metrics_field(&standby.addr, "cache", &["cache", "store_loads"]);
    assert!(
        store_loads.is_some_and(|loads| loads > 0),
        "standby served without store loads: {store_loads:?}"
    );
    let router_metrics =
        round_trip(&router.addr, "{\"id\":0,\"verb\":\"metrics\"}").expect("router metrics");
    let failovers = router_metrics
        .get("router")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get("failovers"))
        .and_then(Json::as_u64);
    assert!(
        failovers.is_some_and(|n| n >= 1),
        "router recorded no failover: {failovers:?}"
    );
    let slot0_failed_over = router_metrics
        .get("router")
        .and_then(|r| r.get("slots"))
        .and_then(Json::as_arr)
        .and_then(<[Json]>::first)
        .and_then(|slot| slot.get("failed_over"))
        .and_then(Json::as_bool);
    assert_eq!(
        slot0_failed_over,
        Some(true),
        "slot 0 did not re-pin to the standby"
    );

    // Clean drain everywhere that is still alive.
    for addr in [&router.addr, &shard1.addr, &standby.addr] {
        let ack = round_trip(addr, "{\"id\":9,\"verb\":\"shutdown\"}").expect("shutdown ack");
        assert_eq!(
            ack.get("shutting_down").and_then(Json::as_bool),
            Some(true),
            "no shutdown ack from {addr}"
        );
    }
    let _ = std::fs::remove_file(&standby_store);
    let _ = std::fs::remove_file(&shard0_store);
}
