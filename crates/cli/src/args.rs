//! Flag-parsing machinery shared by the `groupdet` subcommands.
//!
//! Each subcommand is a struct assembled from flag *groups* (the shared
//! system-parameter group plus command-specific ones). Groups declare
//! their flags as [`Flag`] tables, which drives both `help` output and the
//! did-you-mean suggestion on unknown flags.

use std::str::FromStr;

/// One command-line flag: its name, an optional value metavariable
/// (`None` for boolean switches), and a help line.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// Flag name including the leading dashes, e.g. `--speed`.
    pub name: &'static str,
    /// Value placeholder shown in help (`None` = boolean switch).
    pub value: Option<&'static str>,
    /// One-line description, paper default in parentheses.
    pub help: &'static str,
}

impl Flag {
    /// A flag that takes a value.
    pub const fn value(name: &'static str, value: &'static str, help: &'static str) -> Self {
        Flag {
            name,
            value: Some(value),
            help,
        }
    }

    /// A boolean switch.
    pub const fn switch(name: &'static str, help: &'static str) -> Self {
        Flag {
            name,
            value: None,
            help,
        }
    }
}

/// Cursor over the raw argument list. Groups pull values for their flags
/// through [`Cursor::take_value`] so "flag requires a value" and "invalid
/// value" errors read the same everywhere.
pub struct Cursor<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor at the start of `args` (the arguments after the subcommand).
    pub fn new(args: &'a [String]) -> Self {
        Cursor { args, i: 0 }
    }

    /// The next argument, advancing past it.
    pub fn next(&mut self) -> Option<&'a str> {
        let arg = self.args.get(self.i)?;
        self.i += 1;
        Some(arg)
    }

    /// Takes and parses the value of `flag` from the next argument.
    pub fn take_value<T: FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let raw = self
            .args
            .get(self.i)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        self.i += 1;
        raw.parse()
            .map_err(|_| format!("invalid value for {flag}: {raw}"))
    }
}

/// Error text for an unrecognized flag, naming the nearest valid flag of
/// the subcommand when one is plausibly close.
pub fn unknown_flag(flag: &str, groups: &[&[Flag]]) -> String {
    let names = groups.iter().flat_map(|g| g.iter().map(|f| f.name));
    match nearest(flag, names) {
        Some(best) => format!("unknown option `{flag}` (did you mean `{best}`?)"),
        None => format!("unknown option `{flag}`"),
    }
}

/// Error text for an unrecognized subcommand, with a suggestion.
pub fn unknown_command(command: &str, commands: &[&'static str]) -> String {
    match nearest(command, commands.iter().copied()) {
        Some(best) => format!("unknown command `{command}` (did you mean `{best}`?)"),
        None => format!("unknown command `{command}`"),
    }
}

/// The candidate closest to `unknown` in edit distance, if close enough to
/// be a plausible typo (distance at most 3 and less than the length typed).
fn nearest<'a>(unknown: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (levenshtein(unknown, c), c))
        .min_by_key(|&(d, _)| d)
        .filter(|&(d, _)| d <= 3 && d < unknown.chars().count())
        .map(|(_, c)| c)
}

/// Classic two-row Levenshtein distance over characters.
fn levenshtein(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.chars().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Renders a flag table for `help` output.
pub fn render_flags(out: &mut String, groups: &[&[Flag]]) {
    for group in groups {
        for flag in *group {
            let head = match flag.value {
                Some(value) => format!("{} <{}>", flag.name, value),
                None => flag.name.to_string(),
            };
            out.push_str(&format!("  {head:<22} {}\n", flag.help));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("--sped", "--speed"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn nearest_rejects_wild_guesses() {
        let flags = ["--n", "--speed", "--trials"];
        assert_eq!(nearest("--sped", flags.iter().copied()), Some("--speed"));
        assert_eq!(nearest("--zzzzzzzz", flags.iter().copied()), None);
    }

    #[test]
    fn unknown_flag_message_names_nearest() {
        const GROUP: &[Flag] = &[
            Flag::value("--speed", "m/s", "target speed"),
            Flag::switch("--walk", "random walk"),
        ];
        let msg = unknown_flag("--sped", &[GROUP]);
        assert!(
            msg.contains("--sped") && msg.contains("did you mean `--speed`"),
            "{msg}"
        );
        let msg = unknown_flag("--qqqqqqq", &[GROUP]);
        assert!(!msg.contains("did you mean"), "{msg}");
    }

    #[test]
    fn cursor_take_value() {
        let args: Vec<String> = ["--n", "12", "--bad"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut cur = Cursor::new(&args);
        assert_eq!(cur.next(), Some("--n"));
        assert_eq!(cur.take_value::<usize>("--n").unwrap(), 12);
        assert_eq!(cur.next(), Some("--bad"));
        assert!(cur
            .take_value::<usize>("--bad")
            .unwrap_err()
            .contains("requires a value"));
    }
}
