//! Minimal JSON emission for `--json` output.
//!
//! The workspace deliberately has no serialization dependency, and the CLI
//! emits a handful of flat records — a small value tree plus a renderer is
//! all that is needed. Output is deterministic: keys appear in insertion
//! order, floats render with Rust's shortest round-trip formatting, and
//! non-finite floats become `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, not routed through f64).
    Int(i64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&'static str, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object() {
        let v = Json::obj(vec![
            ("command", "analyze".into()),
            ("n", Json::Int(240)),
            ("p", 0.5.into()),
            ("ok", true.into()),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.render(),
            r#"{"command":"analyze","n":240,"p":0.5,"ok":true,"none":null}"#
        );
    }

    #[test]
    fn nested_arrays_and_escapes() {
        let v = Json::Arr(vec![
            Json::Str("a\"b\\c\n".to_string()),
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
        ]);
        assert_eq!(v.render(), "[\"a\\\"b\\\\c\\n\",null,null]");
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(Json::Num(0.9321).render(), "0.9321");
        assert_eq!(Json::Num(1.0).render(), "1");
        let p: f64 = Json::Num(0.1 + 0.2).render().parse().unwrap();
        assert_eq!(p, 0.1 + 0.2);
    }
}
