//! `groupdet` — command-line front end for the group based detection
//! analysis and simulator.
//!
//! ```text
//! groupdet analyze  [options]          analytical detection probability
//! groupdet simulate [options]          Monte Carlo detection probability
//! groupdet sweep    [options]          analysis + simulation over N
//! groupdet caps     [options]          required g/gh/G for an accuracy target
//! groupdet design   [options]          sensors/range needed for a target probability
//! groupdet help                        option reference
//! ```

use gbd_core::accuracy::required_caps;
use gbd_core::design::{required_sensing_range, required_sensors};
use gbd_core::exact;
use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::runner::run;
use std::process::ExitCode;
use std::str::FromStr;

/// Parsed command-line options with paper defaults.
#[derive(Debug, Clone)]
struct Cli {
    n: usize,
    speed: f64,
    rs: f64,
    field: f64,
    pd: f64,
    m: usize,
    k: usize,
    g: usize,
    gh: usize,
    trials: u64,
    seed: u64,
    walk: bool,
    eta: f64,
    target: f64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            n: 240,
            speed: 10.0,
            rs: 1000.0,
            field: 32_000.0,
            pd: 0.9,
            m: 20,
            k: 5,
            g: 3,
            gh: 3,
            trials: 10_000,
            seed: 2008,
            walk: false,
            eta: 0.99,
            target: 0.95,
        }
    }
}

fn value<T: FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    let raw = args
        .get(i + 1)
        .ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: {raw}"))
}

impl Cli {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut cli = Cli::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--n" => cli.n = value(args, i, flag)?,
                "--speed" => cli.speed = value(args, i, flag)?,
                "--rs" => cli.rs = value(args, i, flag)?,
                "--field" => cli.field = value(args, i, flag)?,
                "--pd" => cli.pd = value(args, i, flag)?,
                "--m" => cli.m = value(args, i, flag)?,
                "--k" => cli.k = value(args, i, flag)?,
                "--g" => cli.g = value(args, i, flag)?,
                "--gh" => cli.gh = value(args, i, flag)?,
                "--trials" => cli.trials = value(args, i, flag)?,
                "--seed" => cli.seed = value(args, i, flag)?,
                "--eta" => cli.eta = value(args, i, flag)?,
                "--target" => cli.target = value(args, i, flag)?,
                "--walk" => {
                    cli.walk = true;
                    i += 1;
                    continue;
                }
                other => return Err(format!("unknown option: {other}")),
            }
            i += 2;
        }
        Ok(cli)
    }

    fn params(&self) -> Result<SystemParams, String> {
        SystemParams::new(
            self.field, self.field, self.n, self.rs, self.speed, 60.0, self.pd, self.m, self.k,
        )
        .map_err(|e| e.to_string())
    }

    fn sim_config(&self, params: SystemParams) -> SimConfig {
        let cfg = SimConfig::new(params)
            .with_trials(self.trials)
            .with_seed(self.seed);
        if self.walk {
            cfg.with_paper_random_walk()
        } else {
            cfg
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("usage: groupdet <analyze|simulate|sweep|caps|help> [options]");
        return ExitCode::FAILURE;
    };
    if matches!(command, "help" | "--help" | "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::parse(&args[1..]) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "analyze" => cmd_analyze(&cli),
        "simulate" => cmd_simulate(&cli),
        "sweep" => cmd_sweep(&cli),
        "caps" => cmd_caps(&cli),
        "design" => cmd_design(&cli),
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "groupdet — group based detection for sparse sensor networks\n\
         \n\
         commands: analyze | simulate | sweep | caps | design | help\n\
         \n\
         options (paper defaults in parentheses):\n\
         \x20 --n <int>       sensors deployed (240)\n\
         \x20 --speed <m/s>   target speed (10)\n\
         \x20 --rs <m>        sensing range (1000)\n\
         \x20 --field <m>     square field side (32000)\n\
         \x20 --pd <p>        per-period detection probability (0.9)\n\
         \x20 --m <int>       window periods M (20)\n\
         \x20 --k <int>       report threshold k (5)\n\
         \x20 --g/--gh <int>  M-S truncation caps (3/3)\n\
         \x20 --trials <int>  simulation trials (10000)\n\
         \x20 --seed <int>    master seed (2008)\n\
         \x20 --walk          random-walk target (simulate/sweep)\n\
         \x20 --eta <p>       accuracy target for caps (0.99)\n\
         \x20 --target <p>    detection-probability target for design (0.95)\n\
         \n\
         examples:\n\
         \x20 groupdet analyze --n 120 --speed 4\n\
         \x20 groupdet simulate --n 120 --trials 2000 --walk\n\
         \x20 groupdet sweep --k 5\n\
         \x20 groupdet caps --eta 0.995"
    );
}

fn cmd_analyze(cli: &Cli) -> Result<(), String> {
    let params = cli.params()?;
    let r = analyze(
        &params,
        &MsOptions {
            g: cli.g,
            gh: cli.gh,
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "M-S-approach   P[X >= {}] = {:.4}",
        params.k(),
        r.detection_probability(params.k())
    );
    println!(
        "unnormalized              = {:.4}",
        r.detection_probability_unnormalized(params.k())
    );
    println!("retained mass             = {:.4}", r.retained_mass());
    println!(
        "exact reference           = {:.4}",
        exact::detection_probability(&params, params.k())
    );
    Ok(())
}

fn cmd_simulate(cli: &Cli) -> Result<(), String> {
    let params = cli.params()?;
    let r = run(&cli.sim_config(params));
    println!(
        "simulation     P[X >= {}] = {:.4}  (95% CI [{:.4}, {:.4}], {} trials{})",
        params.k(),
        r.detection_probability,
        r.confidence.lo,
        r.confidence.hi,
        r.trials,
        if cli.walk { ", random walk" } else { "" }
    );
    println!("mean reports per window   = {:.2}", r.report_counts.mean());
    Ok(())
}

fn cmd_sweep(cli: &Cli) -> Result<(), String> {
    println!("   N  | analysis | simulation");
    for n in (60..=240).step_by(30) {
        let params = cli.params()?.with_n_sensors(n);
        let ana = analyze(
            &params,
            &MsOptions {
                g: cli.g,
                gh: cli.gh,
            },
        )
        .map_err(|e| e.to_string())?
        .detection_probability(params.k());
        let sim = run(&cli.sim_config(params));
        println!("  {n:3} |  {ana:.4}  |  {:.4}", sim.detection_probability);
    }
    Ok(())
}

fn cmd_design(cli: &Cli) -> Result<(), String> {
    let params = cli.params()?;
    match required_sensors(&params, cli.target, 10 * params.n_sensors().max(100))
        .map_err(|e| e.to_string())?
    {
        Some(pt) => println!(
            "sensors needed at Rs = {:.0} m : N = {:.0}  (P = {:.4})",
            params.sensing_range(),
            pt.value,
            pt.achieved
        ),
        None => println!("target unreachable by adding sensors (within 10x the current fleet)"),
    }
    match required_sensing_range(&params, cli.target, 10.0, 10.0 * params.sensing_range())
        .map_err(|e| e.to_string())?
    {
        Some(pt) => println!(
            "range needed at N = {}     : Rs = {:.0} m  (P = {:.4})",
            params.n_sensors(),
            pt.value,
            pt.achieved
        ),
        None => println!("target unreachable by extending range (within 10x the current Rs)"),
    }
    Ok(())
}

fn cmd_caps(cli: &Cli) -> Result<(), String> {
    let params = cli.params()?;
    let caps = required_caps(&params, cli.eta);
    println!(
        "for {:.1}% accuracy: g = {}, gh = {}, G (S-approach) = {}",
        cli.eta * 100.0,
        caps.g,
        caps.gh,
        caps.g_s_approach
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_are_paper_settings() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.n, 240);
        assert_eq!(cli.speed, 10.0);
        assert_eq!(cli.k, 5);
        assert_eq!(cli.m, 20);
        assert_eq!(cli.trials, 10_000);
        assert!(!cli.walk);
    }

    #[test]
    fn flags_override_defaults() {
        let cli = parse(&[
            "--n", "60", "--speed", "4", "--k", "3", "--m", "10", "--trials", "500", "--walk",
            "--eta", "0.95", "--g", "2", "--gh", "4", "--seed", "7",
        ])
        .unwrap();
        assert_eq!(cli.n, 60);
        assert_eq!(cli.speed, 4.0);
        assert_eq!(cli.k, 3);
        assert_eq!(cli.m, 10);
        assert_eq!(cli.trials, 500);
        assert!(cli.walk);
        assert_eq!(cli.eta, 0.95);
        assert_eq!(cli.g, 2);
        assert_eq!(cli.gh, 4);
        assert_eq!(cli.seed, 7);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--n"]).is_err());
        assert!(parse(&["--n", "abc"]).is_err());
        assert!(parse(&["--bogus", "1"]).is_err());
    }

    #[test]
    fn params_reflect_cli() {
        let cli = parse(&["--n", "100", "--field", "10000", "--rs", "500"]).unwrap();
        let p = cli.params().unwrap();
        assert_eq!(p.n_sensors(), 100);
        assert_eq!(p.field_area(), 1e8);
        assert_eq!(p.sensing_range(), 500.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let cli = parse(&["--pd", "1.4"]).unwrap();
        assert!(cli.params().is_err());
    }
}
