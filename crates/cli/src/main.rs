//! `groupdet` — command-line front end for the group based detection
//! analysis and simulator.
//!
//! ```text
//! groupdet analyze  [options]          analytical detection probability
//! groupdet simulate [options]          Monte Carlo detection probability
//! groupdet sweep    [options]          analysis + simulation over N
//! groupdet caps     [options]          required g/gh/G for an accuracy target
//! groupdet design   [options]          sensors/range needed for a target probability
//! groupdet store    <action> [options] inspect/verify/compact/warm a result store
//! groupdet help                        option reference
//! ```
//!
//! Every evaluation goes through the batched engine
//! ([`gbd_engine::Engine`]), so a sweep shares geometry and per-stage work
//! across its points; `--json` switches `analyze`/`simulate`/`sweep` to
//! machine-readable output.

mod args;
mod json;

use args::{render_flags, unknown_command, unknown_flag, Cursor, Flag};
use gbd_core::accuracy::required_caps;
use gbd_core::design::{required_sensing_range, required_sensors};
use gbd_core::ms_approach::MsOptions;
use gbd_core::prelude::*;
use gbd_core::s_approach::SOptions;
use gbd_engine::{
    BackendChain, BackendSpec, Engine, EvalRequest, EvalResponse, RetryPolicy, SimulationSpec,
};
use gbd_router::{Router, RouterConfig};
use gbd_serve::{ServeConfig, Server};
use gbd_sim::config::MotionSpec;
use json::Json;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// The sensing period is fixed at the paper's value; the CLI does not
/// expose it (no figure varies it).
const PERIOD_S: f64 = 60.0;

const COMMANDS: &[&str] = &[
    "analyze", "simulate", "sweep", "caps", "design", "serve", "route", "store", "help",
];

// ---------------------------------------------------------------------------
// Shared flag groups
// ---------------------------------------------------------------------------

/// The system-parameter group shared by every subcommand.
#[derive(Debug, Clone)]
struct ParamArgs {
    n: usize,
    speed: f64,
    rs: f64,
    field: f64,
    pd: f64,
    m: usize,
    k: usize,
}

impl Default for ParamArgs {
    fn default() -> Self {
        ParamArgs {
            n: 240,
            speed: 10.0,
            rs: 1000.0,
            field: 32_000.0,
            pd: 0.9,
            m: 20,
            k: 5,
        }
    }
}

impl ParamArgs {
    const FLAGS: &'static [Flag] = &[
        Flag::value("--n", "int", "sensors deployed (240)"),
        Flag::value("--speed", "m/s", "target speed (10)"),
        Flag::value("--rs", "m", "sensing range (1000)"),
        Flag::value("--field", "m", "square field side (32000)"),
        Flag::value("--pd", "p", "per-period detection probability (0.9)"),
        Flag::value("--m", "int", "window periods M (20)"),
        Flag::value("--k", "int", "report threshold k (5)"),
    ];

    fn try_set(&mut self, flag: &str, cur: &mut Cursor) -> Result<bool, String> {
        match flag {
            "--n" => self.n = cur.take_value(flag)?,
            "--speed" => self.speed = cur.take_value(flag)?,
            "--rs" => self.rs = cur.take_value(flag)?,
            "--field" => self.field = cur.take_value(flag)?,
            "--pd" => self.pd = cur.take_value(flag)?,
            "--m" => self.m = cur.take_value(flag)?,
            "--k" => self.k = cur.take_value(flag)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Builds validated parameters through the fallible constructor.
    fn build(&self) -> Result<SystemParams, String> {
        SystemParams::new(
            self.field, self.field, self.n, self.rs, self.speed, PERIOD_S, self.pd, self.m,
            self.k,
        )
        .map_err(|e| e.to_string())
    }
}

/// Analytical-backend selection group.
#[derive(Debug, Clone)]
struct BackendArgs {
    backend: String,
    g: usize,
    gh: usize,
    cap: Option<usize>,
    max_states: usize,
    deadline_ms: Option<u64>,
    fallbacks: Vec<String>,
}

impl Default for BackendArgs {
    fn default() -> Self {
        BackendArgs {
            backend: "ms".to_string(),
            g: 3,
            gh: 3,
            cap: None,
            max_states: 4_000_000,
            deadline_ms: None,
            fallbacks: Vec::new(),
        }
    }
}

impl BackendArgs {
    const FLAGS: &'static [Flag] = &[
        Flag::value(
            "--backend",
            "name",
            "analytical backend: ms|s|exact|t|poisson (ms)",
        ),
        Flag::value("--g", "int", "M-S/T truncation cap g (3)"),
        Flag::value("--gh", "int", "M-S/T head truncation cap gh (3)"),
        Flag::value("--cap", "int", "sensor cap for s/exact backends (6/32)"),
        Flag::value(
            "--max-states",
            "int",
            "state budget for the t backend (4000000)",
        ),
        Flag::value(
            "--deadline-ms",
            "ms",
            "per-request evaluation deadline (none)",
        ),
        Flag::value(
            "--fallback",
            "name",
            "fallback backend when the primary fails; repeatable",
        ),
    ];

    fn try_set(&mut self, flag: &str, cur: &mut Cursor) -> Result<bool, String> {
        match flag {
            "--backend" => self.backend = cur.take_value(flag)?,
            "--g" => self.g = cur.take_value(flag)?,
            "--gh" => self.gh = cur.take_value(flag)?,
            "--cap" => self.cap = Some(cur.take_value(flag)?),
            "--max-states" => self.max_states = cur.take_value(flag)?,
            "--deadline-ms" => self.deadline_ms = Some(cur.take_value(flag)?),
            "--fallback" => self.fallbacks.push(cur.take_value(flag)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn build(&self) -> Result<BackendSpec, String> {
        self.spec_for(&self.backend)
    }

    /// The primary backend plus any `--fallback` degradation chain.
    fn chain(&self) -> Result<BackendChain, String> {
        let mut chain = BackendChain::new(self.build()?);
        for name in &self.fallbacks {
            chain = chain.with_fallback(self.spec_for(name)?);
        }
        Ok(chain)
    }

    fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    fn spec_for(&self, name: &str) -> Result<BackendSpec, String> {
        let opts = MsOptions {
            g: self.g,
            gh: self.gh,
            eps: 0.0,
        };
        match name {
            "ms" => Ok(BackendSpec::Ms(opts)),
            "s" => Ok(BackendSpec::S(SOptions {
                cap_sensors: self.cap.unwrap_or(SOptions::default().cap_sensors),
            })),
            "exact" => Ok(BackendSpec::Exact {
                saturation_cap: self.cap.unwrap_or(32),
            }),
            "t" => Ok(BackendSpec::T {
                opts,
                max_states: self.max_states,
            }),
            "poisson" => Ok(BackendSpec::Poisson),
            other => Err(format!(
                "unknown backend `{other}` (expected ms, s, exact, t, or poisson)"
            )),
        }
    }
}

/// Simulation campaign group.
#[derive(Debug, Clone)]
struct SimArgs {
    trials: u64,
    seed: u64,
    walk: bool,
    false_alarm: f64,
    awake: f64,
    threads: usize,
    retries: u32,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            trials: 10_000,
            seed: 2008,
            walk: false,
            false_alarm: 0.0,
            awake: 1.0,
            threads: 0,
            retries: 0,
        }
    }
}

impl SimArgs {
    const FLAGS: &'static [Flag] = &[
        Flag::value("--trials", "int", "simulation trials (10000)"),
        Flag::value("--seed", "int", "master seed (2008)"),
        Flag::switch("--walk", "random-walk target instead of straight line"),
        Flag::value("--false-alarm", "p", "per-sensor false-alarm rate (0)"),
        Flag::value("--awake", "p", "per-period awake probability (1)"),
        Flag::value(
            "--threads",
            "int",
            "simulation worker threads, 0 = all cores (0)",
        ),
        Flag::value(
            "--retries",
            "int",
            "retries for transient simulation failures (0)",
        ),
    ];

    fn try_set(&mut self, flag: &str, cur: &mut Cursor) -> Result<bool, String> {
        match flag {
            "--trials" => self.trials = cur.take_value(flag)?,
            "--seed" => self.seed = cur.take_value(flag)?,
            "--walk" => self.walk = true,
            "--false-alarm" => self.false_alarm = cur.take_value(flag)?,
            "--awake" => self.awake = cur.take_value(flag)?,
            "--threads" => self.threads = cur.take_value(flag)?,
            "--retries" => self.retries = cur.take_value(flag)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn retry_policy(&self) -> Option<RetryPolicy> {
        (self.retries > 0).then(|| RetryPolicy::new(self.retries))
    }

    fn build(&self) -> SimulationSpec {
        SimulationSpec {
            trials: self.trials,
            seed: self.seed,
            motion: if self.walk {
                MotionSpec::RandomWalk {
                    max_turn: std::f64::consts::FRAC_PI_4,
                }
            } else {
                MotionSpec::Straight
            },
            false_alarm_rate: self.false_alarm,
            awake_probability: self.awake,
            threads: self.threads,
            ..SimulationSpec::default()
        }
    }
}

const JSON_FLAG: &[Flag] = &[Flag::switch("--json", "machine-readable output")];

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct AnalyzeCmd {
    params: ParamArgs,
    backend: BackendArgs,
    json: bool,
}

impl AnalyzeCmd {
    const GROUPS: &'static [&'static [Flag]] =
        &[ParamArgs::FLAGS, BackendArgs::FLAGS, JSON_FLAG];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = AnalyzeCmd::default();
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            if cmd.params.try_set(flag, &mut cur)? || cmd.backend.try_set(flag, &mut cur)? {
                continue;
            }
            match flag {
                "--json" => cmd.json = true,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        Ok(cmd)
    }

    fn run(&self) -> Result<(), String> {
        let params = self.params.build()?;
        let engine = Engine::new();
        let mut request = EvalRequest::new(params, self.backend.chain()?);
        request.options.deadline = self.backend.deadline();
        let response = engine.evaluate(&request);
        let dist = match &response.outcome {
            Ok(output) => output.analysis().expect("analytical backend"),
            Err(e) => return Err(e.to_string()),
        };
        let p = dist.detection_probability(params.k());
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("command", "analyze".into()),
                    ("backend", response.backend.into()),
                    ("served_by", response.served_by.into()),
                    ("degraded", response.degraded.into()),
                    ("params", params_json(&params)),
                    ("detection_probability", p.into()),
                    (
                        "detection_probability_unnormalized",
                        dist.detection_probability_unnormalized(params.k()).into(),
                    ),
                    ("retained_mass", dist.retained_mass().into()),
                    ("predicted_accuracy", dist.predicted_accuracy().into()),
                    ("duration_ms", duration_ms(&response).into()),
                    ("cache", cache_json(&response)),
                ])
                .render()
            );
        } else {
            println!(
                "{:<14} P[X >= {}] = {:.4}",
                format!("{}-approach", response.served_by),
                params.k(),
                p
            );
            if response.degraded {
                eprintln!(
                    "warning: `{}` backend failed; degraded to `{}`",
                    response.backend, response.served_by
                );
            }
            println!(
                "unnormalized              = {:.4}",
                dist.detection_probability_unnormalized(params.k())
            );
            println!("retained mass             = {:.4}", dist.retained_mass());
            println!(
                "predicted accuracy        = {:.4}",
                dist.predicted_accuracy()
            );
            println!(
                "evaluated in {:.2} ms  ({} cache hits, {} misses)",
                duration_ms(&response),
                response.cache.hits,
                response.cache.misses
            );
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct SimulateCmd {
    params: ParamArgs,
    sim: SimArgs,
    json: bool,
}

impl SimulateCmd {
    const GROUPS: &'static [&'static [Flag]] = &[ParamArgs::FLAGS, SimArgs::FLAGS, JSON_FLAG];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = SimulateCmd::default();
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            if cmd.params.try_set(flag, &mut cur)? || cmd.sim.try_set(flag, &mut cur)? {
                continue;
            }
            match flag {
                "--json" => cmd.json = true,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        Ok(cmd)
    }

    fn run(&self) -> Result<(), String> {
        let params = self.params.build()?;
        let engine = Engine::new();
        let mut request = EvalRequest::new(params, BackendSpec::Simulation(self.sim.build()));
        request.options.retry = self.sim.retry_policy();
        let response = engine.evaluate(&request);
        let result = match &response.outcome {
            Ok(output) => output.simulation().expect("simulation backend"),
            Err(e) => return Err(e.to_string()),
        };
        let wall_ms = duration_ms(&response);
        let trials_per_sec = if wall_ms > 0.0 {
            result.trials as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("command", "simulate".into()),
                    ("params", params_json(&params)),
                    ("trials", result.trials.into()),
                    ("seed", self.sim.seed.into()),
                    ("random_walk", self.sim.walk.into()),
                    ("detection_probability", result.detection_probability.into()),
                    ("confidence_lo", result.confidence.lo.into()),
                    ("confidence_hi", result.confidence.hi.into()),
                    ("mean_reports", result.report_counts.mean().into()),
                    ("mean_false_alarms", result.false_alarm_counts.mean().into()),
                    ("duration_ms", wall_ms.into()),
                    ("trials_per_sec", trials_per_sec.into()),
                    ("cache", cache_json(&response)),
                ])
                .render()
            );
        } else {
            println!(
                "simulation     P[X >= {}] = {:.4}  (95% CI [{:.4}, {:.4}], {} trials{})",
                params.k(),
                result.detection_probability,
                result.confidence.lo,
                result.confidence.hi,
                result.trials,
                if self.sim.walk { ", random walk" } else { "" }
            );
            println!(
                "mean reports per window   = {:.2}",
                result.report_counts.mean()
            );
            println!(
                "wall clock                = {:.1} ms  ({:.0} trials/sec)",
                wall_ms, trials_per_sec
            );
        }
        Ok(())
    }
}

#[derive(Debug)]
struct SweepCmd {
    params: ParamArgs,
    backend: BackendArgs,
    sim: SimArgs,
    n_start: usize,
    n_end: usize,
    n_step: usize,
    no_sim: bool,
    json: bool,
}

impl Default for SweepCmd {
    fn default() -> Self {
        SweepCmd {
            params: ParamArgs::default(),
            backend: BackendArgs::default(),
            sim: SimArgs::default(),
            n_start: 60,
            n_end: 240,
            n_step: 30,
            no_sim: false,
            json: false,
        }
    }
}

impl SweepCmd {
    const FLAGS: &'static [Flag] = &[
        Flag::value("--n-start", "int", "first sensor count of the sweep (60)"),
        Flag::value("--n-end", "int", "last sensor count of the sweep (240)"),
        Flag::value("--n-step", "int", "sweep step (30)"),
        Flag::switch("--no-sim", "analysis only, skip the simulation column"),
    ];
    const GROUPS: &'static [&'static [Flag]] = &[
        ParamArgs::FLAGS,
        BackendArgs::FLAGS,
        SimArgs::FLAGS,
        Self::FLAGS,
        JSON_FLAG,
    ];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = SweepCmd::default();
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            if cmd.params.try_set(flag, &mut cur)?
                || cmd.backend.try_set(flag, &mut cur)?
                || cmd.sim.try_set(flag, &mut cur)?
            {
                continue;
            }
            match flag {
                "--n-start" => cmd.n_start = cur.take_value(flag)?,
                "--n-end" => cmd.n_end = cur.take_value(flag)?,
                "--n-step" => cmd.n_step = cur.take_value(flag)?,
                "--no-sim" => cmd.no_sim = true,
                "--json" => cmd.json = true,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        if cmd.n_step == 0 {
            return Err("--n-step must be positive".to_string());
        }
        if cmd.n_end < cmd.n_start {
            return Err("--n-end must be at least --n-start".to_string());
        }
        Ok(cmd)
    }

    fn sensor_counts(&self) -> Vec<usize> {
        (self.n_start..=self.n_end).step_by(self.n_step).collect()
    }

    fn run(&self) -> Result<(), String> {
        let chain = self.backend.chain()?;
        let spec = self.sim.build();
        let counts = self.sensor_counts();
        let mut requests = Vec::new();
        for &n in &counts {
            let params = ParamArgs {
                n,
                ..self.params.clone()
            }
            .build()?;
            let mut analysis = EvalRequest::new(params, chain.clone());
            analysis.options.deadline = self.backend.deadline();
            requests.push(analysis);
            if !self.no_sim {
                let mut sim = EvalRequest::new(params, BackendSpec::Simulation(spec));
                sim.options.retry = self.sim.retry_policy();
                requests.push(sim);
            }
        }
        let engine = Engine::new();
        let responses = engine.evaluate_batch(&requests);
        // A failed request never aborts the sweep: every row is reported,
        // errors go to stderr (and into the JSON rows), and the command
        // exits nonzero at the end if anything failed.
        let mut failed = 0usize;
        let per_n = if self.no_sim { 1 } else { 2 };
        let mut rows = Vec::new();
        for (i, &n) in counts.iter().enumerate() {
            let analysis = &responses[per_n * i];
            if let Err(e) = &analysis.outcome {
                failed += 1;
                eprintln!(
                    "error: analysis request (n={n}, backend {}): {e}",
                    analysis.backend
                );
            }
            let sim: Option<&EvalResponse> = (!self.no_sim).then(|| &responses[per_n * i + 1]);
            if let Some(sim) = sim {
                if let Err(e) = &sim.outcome {
                    failed += 1;
                    eprintln!("error: simulation request (n={n}): {e}");
                }
            }
            rows.push((n, analysis, sim));
        }
        let stats = engine.cache_stats();
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("command", "sweep".into()),
                    ("backend", chain.primary.name().into()),
                    ("k", self.params.k.into()),
                    (
                        "rows",
                        Json::Arr(
                            rows.iter()
                                .map(|&(n, analysis, sim)| {
                                    let mut row = vec![
                                        ("n", n.into()),
                                        (
                                            "analysis",
                                            match &analysis.outcome {
                                                Ok(_) => analysis
                                                    .detection_probability()
                                                    .map_or(Json::Null, Json::from),
                                                Err(_) => Json::Null,
                                            },
                                        ),
                                        ("served_by", analysis.served_by.into()),
                                        ("degraded", analysis.degraded.into()),
                                        (
                                            "error",
                                            analysis
                                                .outcome
                                                .as_ref()
                                                .err()
                                                .map_or(Json::Null, |e| {
                                                    Json::Str(e.to_string())
                                                }),
                                        ),
                                    ];
                                    if let Some(sim) = sim {
                                        row.push((
                                            "simulation",
                                            sim.outcome
                                                .as_ref()
                                                .ok()
                                                .and_then(|o| o.simulation())
                                                .map_or(Json::Null, |s| {
                                                    s.detection_probability.into()
                                                }),
                                        ));
                                        row.push((
                                            "sim_error",
                                            sim.outcome
                                                .as_ref()
                                                .err()
                                                .map_or(Json::Null, |e| {
                                                    Json::Str(e.to_string())
                                                }),
                                        ));
                                    } else {
                                        row.push(("simulation", Json::Null));
                                        row.push(("sim_error", Json::Null));
                                    }
                                    Json::obj(row)
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "cache",
                        Json::obj(vec![
                            ("hits", stats.hits.into()),
                            ("misses", stats.misses.into()),
                            ("poisoned_recoveries", stats.poisoned_recoveries.into()),
                        ]),
                    ),
                ])
                .render()
            );
        } else {
            println!("   N  | analysis | simulation");
            for (n, analysis, sim) in rows {
                let ana_cell = match &analysis.outcome {
                    Ok(_) => format!(
                        "{:.4}",
                        analysis.detection_probability().unwrap_or(f64::NAN)
                    ),
                    Err(_) => "error ".to_string(),
                };
                let sim_cell = match sim {
                    Some(sim) => match &sim.outcome {
                        Ok(output) => output.simulation().map_or("   -  ".to_string(), |s| {
                            format!("{:.4}", s.detection_probability)
                        }),
                        Err(_) => "error ".to_string(),
                    },
                    None => "   -  ".to_string(),
                };
                println!("  {n:3} |  {ana_cell}  |  {sim_cell}");
            }
            println!(
                "engine cache: {} hits, {} misses over {} requests",
                stats.hits,
                stats.misses,
                requests.len()
            );
        }
        if failed > 0 {
            return Err(format!("{failed} of {} requests failed", requests.len()));
        }
        Ok(())
    }
}

#[derive(Debug)]
struct CapsCmd {
    params: ParamArgs,
    eta: f64,
}

impl CapsCmd {
    const FLAGS: &'static [Flag] =
        &[Flag::value("--eta", "p", "accuracy target for caps (0.99)")];
    const GROUPS: &'static [&'static [Flag]] = &[ParamArgs::FLAGS, Self::FLAGS];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = CapsCmd {
            params: ParamArgs::default(),
            eta: 0.99,
        };
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            if cmd.params.try_set(flag, &mut cur)? {
                continue;
            }
            match flag {
                "--eta" => cmd.eta = cur.take_value(flag)?,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        Ok(cmd)
    }

    fn run(&self) -> Result<(), String> {
        let params = self.params.build()?;
        let caps = required_caps(&params, self.eta);
        println!(
            "for {:.1}% accuracy: g = {}, gh = {}, G (S-approach) = {}",
            self.eta * 100.0,
            caps.g,
            caps.gh,
            caps.g_s_approach
        );
        Ok(())
    }
}

#[derive(Debug)]
struct DesignCmd {
    params: ParamArgs,
    target: f64,
}

impl DesignCmd {
    const FLAGS: &'static [Flag] = &[Flag::value(
        "--target",
        "p",
        "detection-probability target for design (0.95)",
    )];
    const GROUPS: &'static [&'static [Flag]] = &[ParamArgs::FLAGS, Self::FLAGS];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = DesignCmd {
            params: ParamArgs::default(),
            target: 0.95,
        };
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            if cmd.params.try_set(flag, &mut cur)? {
                continue;
            }
            match flag {
                "--target" => cmd.target = cur.take_value(flag)?,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        Ok(cmd)
    }

    fn run(&self) -> Result<(), String> {
        let params = self.params.build()?;
        match required_sensors(&params, self.target, 10 * params.n_sensors().max(100))
            .map_err(|e| e.to_string())?
        {
            Some(pt) => println!(
                "sensors needed at Rs = {:.0} m : N = {:.0}  (P = {:.4})",
                params.sensing_range(),
                pt.value,
                pt.achieved
            ),
            None => {
                println!("target unreachable by adding sensors (within 10x the current fleet)")
            }
        }
        match required_sensing_range(&params, self.target, 10.0, 10.0 * params.sensing_range())
            .map_err(|e| e.to_string())?
        {
            Some(pt) => println!(
                "range needed at N = {}     : Rs = {:.0} m  (P = {:.4})",
                params.n_sensors(),
                pt.value,
                pt.achieved
            ),
            None => {
                println!("target unreachable by extending range (within 10x the current Rs)")
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct ServeCmd {
    addr: String,
    batch_max: usize,
    flush_us: u64,
    queue_depth: usize,
    max_inflight: usize,
    conn_limit: u64,
    max_line_bytes: usize,
    workers: usize,
    cache_cap: usize,
    store: Option<String>,
    metrics_addr: Option<String>,
    obs_window_ms: u64,
    shard_id: Option<String>,
    replicate_to: Option<String>,
    replica_listen: Option<String>,
    json: bool,
}

impl Default for ServeCmd {
    fn default() -> Self {
        let defaults = ServeConfig::default();
        ServeCmd {
            addr: "127.0.0.1:7171".to_string(),
            batch_max: defaults.batch_max,
            flush_us: defaults.flush_interval.as_micros() as u64,
            queue_depth: defaults.queue_depth,
            max_inflight: defaults.max_inflight_per_conn,
            conn_limit: defaults.max_requests_per_conn,
            max_line_bytes: defaults.max_line_bytes,
            workers: 0,
            // A long-lived server must not grow its caches without bound;
            // 64k entries per shard is a generous working set, and eviction
            // only ever causes bit-identical recomputation.
            cache_cap: 1 << 16,
            store: None,
            metrics_addr: None,
            obs_window_ms: 1000,
            shard_id: None,
            replicate_to: None,
            replica_listen: None,
            json: false,
        }
    }
}

impl ServeCmd {
    const FLAGS: &'static [Flag] = &[
        Flag::value(
            "--addr",
            "host:port",
            "listen address; port 0 picks one (127.0.0.1:7171)",
        ),
        Flag::value(
            "--batch-max",
            "int",
            "flush a coalesced batch at this many requests (32)",
        ),
        Flag::value("--flush-us", "µs", "coalescer flush interval (500)"),
        Flag::value(
            "--queue-depth",
            "int",
            "admission bound; overflow is shed as `overloaded` (1024)",
        ),
        Flag::value(
            "--max-inflight",
            "int",
            "pipelined responses per connection before backpressure (64)",
        ),
        Flag::value(
            "--conn-limit",
            "int",
            "eval requests per connection, 0 = unlimited (0)",
        ),
        Flag::value(
            "--max-line-bytes",
            "bytes",
            "longest accepted request line (1048576)",
        ),
        Flag::value(
            "--workers",
            "int",
            "engine worker threads, 0 = all cores (0)",
        ),
        Flag::value(
            "--cache-cap",
            "int",
            "engine cache entries per shard, 0 = unbounded (65536)",
        ),
        Flag::value(
            "--store",
            "path",
            "persistent result store: warm-start on boot, spill on compute, snapshot on drain (none)",
        ),
        Flag::value(
            "--metrics-addr",
            "host:port",
            "Prometheus text exposition endpoint; port 0 picks one (disabled)",
        ),
        Flag::value(
            "--obs-window-ms",
            "ms",
            "windowed metric delta resolution for watch/ring (1000)",
        ),
        Flag::value(
            "--shard-id",
            "name",
            "shard identity in the cluster metrics section (listen address)",
        ),
        Flag::value(
            "--replicate-to",
            "host:port",
            "ship store appends to this standby replica listener (requires --store)",
        ),
        Flag::value(
            "--replica-listen",
            "host:port",
            "accept replicated store records here; port 0 picks one (disabled)",
        ),
    ];
    const GROUPS: &'static [&'static [Flag]] = &[Self::FLAGS, JSON_FLAG];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = ServeCmd::default();
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            match flag {
                "--addr" => cmd.addr = cur.take_value(flag)?,
                "--batch-max" => cmd.batch_max = cur.take_value(flag)?,
                "--flush-us" => cmd.flush_us = cur.take_value(flag)?,
                "--queue-depth" => cmd.queue_depth = cur.take_value(flag)?,
                "--max-inflight" => cmd.max_inflight = cur.take_value(flag)?,
                "--conn-limit" => cmd.conn_limit = cur.take_value(flag)?,
                "--max-line-bytes" => cmd.max_line_bytes = cur.take_value(flag)?,
                "--workers" => cmd.workers = cur.take_value(flag)?,
                "--cache-cap" => cmd.cache_cap = cur.take_value(flag)?,
                "--store" => cmd.store = Some(cur.take_value(flag)?),
                "--metrics-addr" => cmd.metrics_addr = Some(cur.take_value(flag)?),
                "--obs-window-ms" => cmd.obs_window_ms = cur.take_value(flag)?,
                "--shard-id" => cmd.shard_id = Some(cur.take_value(flag)?),
                "--replicate-to" => cmd.replicate_to = Some(cur.take_value(flag)?),
                "--replica-listen" => cmd.replica_listen = Some(cur.take_value(flag)?),
                "--json" => cmd.json = true,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        Ok(cmd)
    }

    fn config(&self) -> ServeConfig {
        ServeConfig {
            addr: self.addr.clone(),
            batch_max: self.batch_max,
            flush_interval: Duration::from_micros(self.flush_us),
            queue_depth: self.queue_depth,
            max_inflight_per_conn: self.max_inflight,
            max_requests_per_conn: self.conn_limit,
            max_line_bytes: self.max_line_bytes,
            handle_signals: true,
            metrics_addr: self.metrics_addr.clone(),
            obs_window: Duration::from_millis(self.obs_window_ms.max(1)),
            shard_id: self.shard_id.clone(),
            replicate_to: self.replicate_to.clone(),
            replica_listen: self.replica_listen.clone(),
        }
    }

    fn run(&self) -> Result<(), String> {
        let mut engine = if self.workers == 0 {
            Engine::new()
        } else {
            Engine::with_workers(self.workers)
        };
        if self.cache_cap > 0 {
            engine = engine.with_cache_capacity(self.cache_cap);
        }
        if let Some(path) = &self.store {
            engine = engine
                .with_store(path)
                .map_err(|e| format!("cannot open store {path}: {e}"))?;
        }
        let server = Server::bind(self.config(), Arc::new(engine))
            .map_err(|e| format!("cannot bind {}: {e}", self.addr))?;
        let addr = server.local_addr();
        let metrics_addr = server.metrics_local_addr();
        let replica_addr = server.replica_local_addr();
        let handle = server.handle();
        if self.json {
            let mut fields = vec![
                ("event", "listening".into()),
                ("addr", Json::Str(addr.to_string())),
                ("batch_max", self.batch_max.into()),
                ("flush_us", self.flush_us.into()),
                ("queue_depth", self.queue_depth.into()),
            ];
            if let Some(m) = metrics_addr {
                fields.push(("metrics_addr", Json::Str(m.to_string())));
            }
            if let Some(r) = replica_addr {
                fields.push(("replica_addr", Json::Str(r.to_string())));
            }
            println!("{}", Json::obj(fields).render());
        } else {
            println!(
                "listening on {addr}  (batch-max {}, flush {} µs, queue {})",
                self.batch_max, self.flush_us, self.queue_depth
            );
            if let Some(m) = metrics_addr {
                println!("metrics exposition on http://{m}/metrics");
            }
            if let Some(r) = replica_addr {
                println!("replica listener on {r}");
            }
        }
        server.run().map_err(|e| e.to_string())?;
        let metrics = handle.metrics();
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("event", "stopped".into()),
                    ("evaluated", metrics.evaluated.get().into()),
                    ("batches_flushed", metrics.batches_flushed.get().into()),
                    ("coalescing_factor", metrics.coalescing_factor().into()),
                    ("shed", metrics.shed.get().into()),
                    ("rejected", metrics.rejected.get().into()),
                    ("connections_total", metrics.connections_total.get().into()),
                ])
                .render()
            );
        } else {
            println!(
                "stopped: {} requests in {} batches (coalescing {:.2}x), {} shed, {} rejected, {} connections",
                metrics.evaluated.get(),
                metrics.batches_flushed.get(),
                metrics.coalescing_factor(),
                metrics.shed.get(),
                metrics.rejected.get(),
                metrics.connections_total.get(),
            );
        }
        Ok(())
    }
}

/// `groupdet route` — front a cluster of `groupdet serve` shards with a
/// consistent-hashing router (health checks, retries, breakers,
/// standby failover).
#[derive(Debug, Clone)]
struct RouteCmd {
    addr: String,
    shards: Vec<String>,
    standbys: Vec<(usize, String)>,
    vnodes: usize,
    retries: u32,
    backoff_ms: u64,
    breaker_threshold: u32,
    breaker_cooldown_ms: u64,
    heartbeat_ms: u64,
    heartbeat_misses: u32,
    upstream_timeout_ms: u64,
    json: bool,
}

impl Default for RouteCmd {
    fn default() -> Self {
        let defaults = RouterConfig::default();
        RouteCmd {
            addr: "127.0.0.1:7272".to_string(),
            shards: Vec::new(),
            standbys: Vec::new(),
            vnodes: defaults.virtual_nodes,
            retries: defaults.retries,
            backoff_ms: defaults.backoff_base.as_millis() as u64,
            breaker_threshold: defaults.breaker_threshold,
            breaker_cooldown_ms: defaults.breaker_cooldown.as_millis() as u64,
            heartbeat_ms: defaults.heartbeat_interval.as_millis() as u64,
            heartbeat_misses: defaults.heartbeat_misses,
            upstream_timeout_ms: defaults.upstream_timeout.as_millis() as u64,
            json: false,
        }
    }
}

impl RouteCmd {
    const FLAGS: &'static [Flag] = &[
        Flag::value(
            "--addr",
            "host:port",
            "listen address; port 0 picks one (127.0.0.1:7272)",
        ),
        Flag::value(
            "--shard",
            "host:port",
            "shard serving address; repeatable, slot order (required)",
        ),
        Flag::value(
            "--standby",
            "slot:host:port",
            "warm standby for a slot, e.g. 0:127.0.0.1:7080; repeatable",
        ),
        Flag::value("--vnodes", "int", "hash-ring points per shard (64)"),
        Flag::value(
            "--retries",
            "int",
            "transport retries per request after the first attempt (3)",
        ),
        Flag::value("--backoff-ms", "ms", "first retry backoff, doubling (10)"),
        Flag::value(
            "--breaker-threshold",
            "int",
            "consecutive failures that open a slot's circuit breaker (3)",
        ),
        Flag::value(
            "--breaker-cooldown-ms",
            "ms",
            "how long an open breaker sheds before half-opening (1000)",
        ),
        Flag::value("--heartbeat-ms", "ms", "shard health-check cadence (500)"),
        Flag::value(
            "--heartbeat-misses",
            "int",
            "consecutive misses that declare a shard dead (3)",
        ),
        Flag::value(
            "--upstream-timeout-ms",
            "ms",
            "bound on every upstream socket operation (10000)",
        ),
    ];
    const GROUPS: &'static [&'static [Flag]] = &[Self::FLAGS, JSON_FLAG];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cmd = RouteCmd::default();
        let mut cur = Cursor::new(raw);
        while let Some(flag) = cur.next() {
            match flag {
                "--addr" => cmd.addr = cur.take_value(flag)?,
                "--shard" => cmd.shards.push(cur.take_value(flag)?),
                "--standby" => {
                    let spec: String = cur.take_value(flag)?;
                    cmd.standbys.push(Self::parse_standby(&spec)?);
                }
                "--vnodes" => cmd.vnodes = cur.take_value(flag)?,
                "--retries" => cmd.retries = cur.take_value(flag)?,
                "--backoff-ms" => cmd.backoff_ms = cur.take_value(flag)?,
                "--breaker-threshold" => cmd.breaker_threshold = cur.take_value(flag)?,
                "--breaker-cooldown-ms" => cmd.breaker_cooldown_ms = cur.take_value(flag)?,
                "--heartbeat-ms" => cmd.heartbeat_ms = cur.take_value(flag)?,
                "--heartbeat-misses" => cmd.heartbeat_misses = cur.take_value(flag)?,
                "--upstream-timeout-ms" => cmd.upstream_timeout_ms = cur.take_value(flag)?,
                "--json" => cmd.json = true,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        if cmd.shards.is_empty() {
            return Err("route requires at least one --shard <host:port>".to_string());
        }
        for (slot, addr) in &cmd.standbys {
            if *slot >= cmd.shards.len() {
                return Err(format!(
                    "--standby {slot}:{addr} names slot {slot}, but only {} shards are configured",
                    cmd.shards.len()
                ));
            }
        }
        Ok(cmd)
    }

    /// Splits `slot:host:port` at the first colon.
    fn parse_standby(spec: &str) -> Result<(usize, String), String> {
        let (slot, addr) = spec
            .split_once(':')
            .ok_or_else(|| format!("--standby `{spec}` must be slot:host:port"))?;
        let slot: usize = slot
            .parse()
            .map_err(|_| format!("--standby `{spec}`: `{slot}` is not a slot index"))?;
        if addr.is_empty() {
            return Err(format!("--standby `{spec}` must name an address"));
        }
        Ok((slot, addr.to_string()))
    }

    fn config(&self) -> RouterConfig {
        RouterConfig {
            addr: self.addr.clone(),
            shards: self.shards.clone(),
            standbys: self.standbys.clone(),
            virtual_nodes: self.vnodes,
            retries: self.retries,
            backoff_base: Duration::from_millis(self.backoff_ms),
            breaker_threshold: self.breaker_threshold.max(1),
            breaker_cooldown: Duration::from_millis(self.breaker_cooldown_ms),
            heartbeat_interval: Duration::from_millis(self.heartbeat_ms.max(1)),
            heartbeat_misses: self.heartbeat_misses.max(1),
            upstream_timeout: Duration::from_millis(self.upstream_timeout_ms.max(1)),
            handle_signals: true,
            ..RouterConfig::default()
        }
    }

    fn run(&self) -> Result<(), String> {
        let router = Router::bind(self.config())
            .map_err(|e| format!("cannot bind {}: {e}", self.addr))?;
        let addr = router.local_addr();
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("event", "listening".into()),
                    ("addr", Json::Str(addr.to_string())),
                    ("shards", self.shards.len().into()),
                    ("standbys", self.standbys.len().into()),
                ])
                .render()
            );
        } else {
            println!(
                "routing on {addr} across {} shards ({} standbys)",
                self.shards.len(),
                self.standbys.len()
            );
        }
        router.run().map_err(|e| e.to_string())?;
        if self.json {
            println!("{}", Json::obj(vec![("event", "stopped".into())]).render());
        } else {
            println!("stopped");
        }
        Ok(())
    }
}

/// `groupdet store <info|verify|compact|warm>` — operate on a persistent
/// result store without starting a server.
#[derive(Debug)]
struct StoreCmd {
    action: String,
    path: String,
    params: ParamArgs,
    n_start: usize,
    n_end: usize,
    n_step: usize,
    json: bool,
}

impl StoreCmd {
    const ACTIONS: &'static [&'static str] = &["info", "verify", "compact", "warm"];
    const FLAGS: &'static [Flag] = &[
        Flag::value("--path", "file", "store file to operate on (required)"),
        Flag::value("--n-start", "int", "first sensor count warmed (60)"),
        Flag::value("--n-end", "int", "last sensor count warmed (240)"),
        Flag::value("--n-step", "int", "warm sweep step (30)"),
    ];
    const GROUPS: &'static [&'static [Flag]] = &[ParamArgs::FLAGS, Self::FLAGS, JSON_FLAG];

    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut cur = Cursor::new(raw);
        let action = match cur.next() {
            Some(a) if Self::ACTIONS.contains(&a) => a.to_string(),
            Some(other) => {
                return Err(format!(
                    "unknown store action `{other}` (expected info, verify, compact, or warm)"
                ))
            }
            None => {
                return Err(
                    "store requires an action: info, verify, compact, or warm".to_string()
                )
            }
        };
        let mut cmd = StoreCmd {
            action,
            path: String::new(),
            params: ParamArgs::default(),
            n_start: 60,
            n_end: 240,
            n_step: 30,
            json: false,
        };
        while let Some(flag) = cur.next() {
            if cmd.params.try_set(flag, &mut cur)? {
                continue;
            }
            match flag {
                "--path" => cmd.path = cur.take_value(flag)?,
                "--n-start" => cmd.n_start = cur.take_value(flag)?,
                "--n-end" => cmd.n_end = cur.take_value(flag)?,
                "--n-step" => cmd.n_step = cur.take_value(flag)?,
                "--json" => cmd.json = true,
                other => return Err(unknown_flag(other, Self::GROUPS)),
            }
        }
        if cmd.path.is_empty() {
            return Err("store requires --path <file>".to_string());
        }
        if cmd.n_step == 0 {
            return Err("--n-step must be positive".to_string());
        }
        if cmd.n_end < cmd.n_start {
            return Err("--n-end must be at least --n-start".to_string());
        }
        Ok(cmd)
    }

    fn run(&self) -> Result<(), String> {
        match self.action.as_str() {
            "info" => self.info(false),
            "verify" => self.info(true),
            "compact" => self.compact(),
            "warm" => self.warm(),
            _ => unreachable!("parse admits only known actions"),
        }
    }

    /// `info` prints the read-only inspection; `verify` additionally exits
    /// nonzero when the log carries torn or corrupt bytes past its valid
    /// prefix.
    fn info(&self, verify: bool) -> Result<(), String> {
        let report =
            gbd_store::Store::inspect(&self.path).map_err(|e| format!("{}: {e}", self.path))?;
        let intact = report.torn_bytes == 0;
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("command", "store".into()),
                    ("action", if verify { "verify" } else { "info" }.into()),
                    ("path", Json::Str(self.path.clone())),
                    (
                        "tag",
                        Json::Str(String::from_utf8_lossy(&report.tag).into_owned()),
                    ),
                    ("records", report.records.into()),
                    ("live_entries", report.live_entries.into()),
                    ("valid_bytes", report.valid_bytes.into()),
                    ("torn_bytes", report.torn_bytes.into()),
                    ("intact", intact.into()),
                ])
                .render()
            );
        } else {
            println!("store {}", self.path);
            println!("  tag          = {}", String::from_utf8_lossy(&report.tag));
            println!("  records      = {}", report.records);
            println!("  live entries = {}", report.live_entries);
            println!("  valid bytes  = {}", report.valid_bytes);
            println!("  torn bytes   = {}", report.torn_bytes);
        }
        if verify && !intact {
            return Err(format!(
                "{}: {} torn/corrupt bytes past the valid prefix (recovery will truncate them)",
                self.path, report.torn_bytes
            ));
        }
        Ok(())
    }

    /// Rewrites the log to its live entries via the engine's atomic
    /// snapshot (write temp + rename), dropping duplicate appends.
    fn compact(&self) -> Result<(), String> {
        if !std::path::Path::new(&self.path).exists() {
            return Err(format!("{}: no such store", self.path));
        }
        let engine = Engine::new()
            .with_store(&self.path)
            .map_err(|e| format!("{}: {e}", self.path))?;
        let report = engine
            .snapshot_store()
            .expect("store attached")
            .map_err(|e| e.to_string())?;
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("command", "store".into()),
                    ("action", "compact".into()),
                    ("path", Json::Str(self.path.clone())),
                    ("bytes_before", report.bytes_before.into()),
                    ("bytes_after", report.bytes_after.into()),
                    ("live_entries", report.live_entries.into()),
                    ("records_dropped", report.records_dropped.into()),
                ])
                .render()
            );
        } else {
            println!(
                "compacted {}: {} -> {} bytes ({} live entries, {} duplicate records dropped)",
                self.path,
                report.bytes_before,
                report.bytes_after,
                report.live_entries,
                report.records_dropped
            );
        }
        Ok(())
    }

    /// Runs an analytical sweep over N against the store, so a later
    /// engine or server boot warm-starts from it. Rows are printed with
    /// full float round-trip precision: two `warm` runs over the same
    /// store (or one cold, one warm) must render identical rows.
    fn warm(&self) -> Result<(), String> {
        let engine = Engine::new()
            .with_store(&self.path)
            .map_err(|e| format!("{}: {e}", self.path))?;
        let counts: Vec<usize> = (self.n_start..=self.n_end).step_by(self.n_step).collect();
        let mut requests = Vec::new();
        for &n in &counts {
            let params = ParamArgs {
                n,
                ..self.params.clone()
            }
            .build()?;
            requests.push(EvalRequest::new(params, BackendSpec::ms_default()));
        }
        let responses = engine.evaluate_batch(&requests);
        if let Some(Err(e)) = engine.sync_store() {
            return Err(format!("store sync failed: {e}"));
        }
        let mut failed = 0usize;
        let mut rows = Vec::new();
        for (&n, response) in counts.iter().zip(&responses) {
            if let Err(e) = &response.outcome {
                failed += 1;
                eprintln!("error: warm request (n={n}): {e}");
            }
            rows.push((n, response.detection_probability()));
        }
        let cache = engine.cache_stats();
        let store = engine.store_stats().expect("store attached");
        if self.json {
            println!(
                "{}",
                Json::obj(vec![
                    ("command", "store".into()),
                    ("action", "warm".into()),
                    ("path", Json::Str(self.path.clone())),
                    ("k", self.params.k.into()),
                    (
                        "rows",
                        Json::Arr(
                            rows.iter()
                                .map(|&(n, p)| {
                                    Json::obj(vec![
                                        ("n", n.into()),
                                        ("p", p.map_or(Json::Null, Json::from)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "store",
                        Json::obj(vec![
                            ("loads", cache.store_loads.into()),
                            ("spills", cache.store_spills.into()),
                            ("loaded_records", store.loaded_records.into()),
                            ("torn_bytes_discarded", store.torn_bytes_discarded.into(),),
                            ("appended_records", store.appended_records.into()),
                            ("live_entries", store.live_entries.into()),
                            ("file_bytes", store.file_bytes.into()),
                        ]),
                    ),
                ])
                .render()
            );
        } else {
            println!("   N  | P[X >= {}]", self.params.k);
            for (n, p) in &rows {
                match p {
                    Some(p) => println!("  {n:3} |  {p:.6}"),
                    None => println!("  {n:3} |  error"),
                }
            }
            println!(
                "store: {} loaded, {} spilled, {} torn bytes discarded, {} live entries",
                cache.store_loads,
                cache.store_spills,
                store.torn_bytes_discarded,
                store.live_entries
            );
        }
        if failed > 0 {
            return Err(format!("{failed} of {} warm requests failed", counts.len()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Shared output helpers
// ---------------------------------------------------------------------------

fn duration_ms(response: &EvalResponse) -> f64 {
    response.duration.as_secs_f64() * 1e3
}

fn cache_json(response: &EvalResponse) -> Json {
    Json::obj(vec![
        ("hits", response.cache.hits.into()),
        ("misses", response.cache.misses.into()),
    ])
}

fn params_json(params: &SystemParams) -> Json {
    Json::obj(vec![
        ("n", params.n_sensors().into()),
        ("speed", params.speed().into()),
        ("rs", params.sensing_range().into()),
        ("field", params.field_width().into()),
        ("pd", params.pd().into()),
        ("m", params.m_periods().into()),
        ("k", params.k().into()),
    ])
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: groupdet <analyze|simulate|sweep|caps|design|serve|route|store|help> [options]"
        );
        return ExitCode::FAILURE;
    };
    if matches!(command, "help" | "--help" | "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    let rest = &args[1..];
    let result = match command {
        "analyze" => AnalyzeCmd::parse(rest).and_then(|cmd| cmd.run()),
        "simulate" => SimulateCmd::parse(rest).and_then(|cmd| cmd.run()),
        "sweep" => SweepCmd::parse(rest).and_then(|cmd| cmd.run()),
        "caps" => CapsCmd::parse(rest).and_then(|cmd| cmd.run()),
        "design" => DesignCmd::parse(rest).and_then(|cmd| cmd.run()),
        "serve" => ServeCmd::parse(rest).and_then(|cmd| cmd.run()),
        "route" => RouteCmd::parse(rest).and_then(|cmd| cmd.run()),
        "store" => StoreCmd::parse(rest).and_then(|cmd| cmd.run()),
        other => Err(unknown_command(other, COMMANDS)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    let mut out = String::from(
        "groupdet — group based detection for sparse sensor networks\n\
         \n\
         commands: analyze | simulate | sweep | caps | design | serve | route | store | help\n\
         \n\
         system parameters (all commands; paper defaults in parentheses):\n",
    );
    render_flags(&mut out, &[ParamArgs::FLAGS]);
    out.push_str("\nanalyze / sweep backend options:\n");
    render_flags(&mut out, &[BackendArgs::FLAGS]);
    out.push_str("\nsimulate / sweep simulation options:\n");
    render_flags(&mut out, &[SimArgs::FLAGS]);
    out.push_str("\nsweep range options:\n");
    render_flags(&mut out, &[SweepCmd::FLAGS]);
    out.push_str(
        "\nserve options (JSON-lines protocol; see docs/SERVING.md; streaming\n\
         detection sessions via stream_open/report/stream_close, see\n\
         docs/STREAMING.md):\n",
    );
    render_flags(&mut out, &[ServeCmd::FLAGS]);
    out.push_str("\nroute options (sharded cluster; see docs/CLUSTER.md):\n");
    render_flags(&mut out, &[RouteCmd::FLAGS]);
    out.push_str(
        "\nstore actions (persistent result store; see docs/STORAGE.md):\n\
         \x20 info | verify | compact | warm\n",
    );
    render_flags(&mut out, &[StoreCmd::FLAGS]);
    out.push_str("\nother options:\n");
    render_flags(&mut out, &[JSON_FLAG, CapsCmd::FLAGS, DesignCmd::FLAGS]);
    out.push_str(
        "\nexamples:\n\
         \x20 groupdet analyze --n 120 --speed 4 --json\n\
         \x20 groupdet analyze --backend exact --n 120\n\
         \x20 groupdet simulate --n 120 --trials 2000 --walk\n\
         \x20 groupdet sweep --k 5 --n-step 60 --trials 2000\n\
         \x20 groupdet caps --eta 0.995\n\
         \x20 groupdet serve --addr 127.0.0.1:0 --batch-max 64 --json\n\
         \x20 groupdet serve --store results/cache.gbdstore\n\
         \x20 groupdet serve --store s0.gbdstore --replicate-to 127.0.0.1:7080\n\
         \x20 groupdet route --shard 127.0.0.1:7171 --shard 127.0.0.1:7172 \\\n\
         \x20                --standby 0:127.0.0.1:7180\n\
         \x20 groupdet store warm --path results/cache.gbdstore --n-step 30\n\
         \x20 groupdet store verify --path results/cache.gbdstore --json",
    );
    println!("{out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn analyze_defaults_are_paper_settings() {
        let cmd = AnalyzeCmd::parse(&[]).unwrap();
        assert_eq!(cmd.params.n, 240);
        assert_eq!(cmd.params.speed, 10.0);
        assert_eq!(cmd.params.k, 5);
        assert_eq!(cmd.params.m, 20);
        assert_eq!(cmd.backend.backend, "ms");
        assert!(!cmd.json);
    }

    #[test]
    fn analyze_flags_override_defaults() {
        let cmd = AnalyzeCmd::parse(&strings(&[
            "--n",
            "60",
            "--speed",
            "4",
            "--k",
            "3",
            "--m",
            "10",
            "--g",
            "2",
            "--gh",
            "4",
            "--backend",
            "t",
            "--max-states",
            "1000",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cmd.params.n, 60);
        assert_eq!(cmd.params.speed, 4.0);
        assert_eq!(cmd.params.k, 3);
        assert_eq!(cmd.params.m, 10);
        assert_eq!(cmd.backend.g, 2);
        assert_eq!(cmd.backend.gh, 4);
        assert_eq!(cmd.backend.backend, "t");
        assert_eq!(cmd.backend.max_states, 1000);
        assert!(cmd.json);
        assert!(matches!(
            cmd.backend.build().unwrap(),
            BackendSpec::T {
                max_states: 1000,
                ..
            }
        ));
    }

    #[test]
    fn simulate_flags_parse() {
        let cmd = SimulateCmd::parse(&strings(&[
            "--trials",
            "500",
            "--seed",
            "7",
            "--walk",
            "--false-alarm",
            "0.01",
            "--awake",
            "0.8",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(cmd.sim.trials, 500);
        assert_eq!(cmd.sim.seed, 7);
        assert!(cmd.sim.walk);
        assert_eq!(cmd.sim.false_alarm, 0.01);
        assert_eq!(cmd.sim.awake, 0.8);
        assert_eq!(cmd.sim.threads, 2);
        let spec = cmd.sim.build();
        assert!(matches!(spec.motion, MotionSpec::RandomWalk { .. }));
        assert_eq!(spec.trials, 500);
    }

    #[test]
    fn sweep_range_flags() {
        let cmd = SweepCmd::parse(&strings(&[
            "--n-start",
            "100",
            "--n-end",
            "200",
            "--n-step",
            "50",
        ]))
        .unwrap();
        assert_eq!(cmd.sensor_counts(), vec![100, 150, 200]);
        assert!(SweepCmd::parse(&strings(&["--n-step", "0"])).is_err());
        assert!(SweepCmd::parse(&strings(&["--n-start", "9", "--n-end", "3"])).is_err());
    }

    #[test]
    fn unknown_flag_suggests_nearest() {
        let err = AnalyzeCmd::parse(&strings(&["--sped", "4"])).unwrap_err();
        assert!(err.contains("did you mean `--speed`"), "{err}");
        let err = SimulateCmd::parse(&strings(&["--trails", "10"])).unwrap_err();
        assert!(err.contains("did you mean `--trials`"), "{err}");
        let err = SweepCmd::parse(&strings(&["--n-stop", "3"])).unwrap_err();
        assert!(err.contains("did you mean"), "{err}");
        let err = ServeCmd::parse(&strings(&["--batchmax", "8"])).unwrap_err();
        assert!(err.contains("did you mean `--batch-max`"), "{err}");
        let err = ServeCmd::parse(&strings(&["--flush-ms", "5"])).unwrap_err();
        assert!(err.contains("did you mean `--flush-us`"), "{err}");
        let err = ServeCmd::parse(&strings(&["--queue-deph", "9"])).unwrap_err();
        assert!(err.contains("did you mean `--queue-depth`"), "{err}");
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        let cmd = ServeCmd::parse(&[]).unwrap();
        assert_eq!(cmd.addr, "127.0.0.1:7171");
        assert_eq!(cmd.batch_max, 32);
        assert_eq!(cmd.flush_us, 500);
        assert_eq!(cmd.queue_depth, 1024);
        assert_eq!(cmd.conn_limit, 0);
        assert_eq!(cmd.cache_cap, 1 << 16);
        assert!(!cmd.json);
        let cmd = ServeCmd::parse(&strings(&[
            "--addr",
            "0.0.0.0:0",
            "--batch-max",
            "8",
            "--flush-us",
            "250",
            "--queue-depth",
            "16",
            "--max-inflight",
            "4",
            "--conn-limit",
            "100",
            "--max-line-bytes",
            "4096",
            "--workers",
            "2",
            "--cache-cap",
            "0",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cmd.addr, "0.0.0.0:0");
        assert_eq!(cmd.batch_max, 8);
        assert_eq!(cmd.flush_us, 250);
        assert_eq!(cmd.queue_depth, 16);
        assert_eq!(cmd.max_inflight, 4);
        assert_eq!(cmd.conn_limit, 100);
        assert_eq!(cmd.max_line_bytes, 4096);
        assert_eq!(cmd.workers, 2);
        assert_eq!(cmd.cache_cap, 0);
        assert!(cmd.json);
        let config = cmd.config();
        assert_eq!(config.flush_interval, Duration::from_micros(250));
        assert!(config.handle_signals);
    }

    #[test]
    fn unknown_command_suggests_nearest() {
        let err = unknown_command("anlyze", COMMANDS);
        assert!(err.contains("did you mean `analyze`"), "{err}");
    }

    #[test]
    fn value_errors_are_reported() {
        assert!(AnalyzeCmd::parse(&strings(&["--n"])).is_err());
        assert!(AnalyzeCmd::parse(&strings(&["--n", "abc"])).is_err());
        assert!(AnalyzeCmd::parse(&strings(&["--bogus", "1"]))
            .unwrap_err()
            .contains("unknown option"));
    }

    #[test]
    fn params_build_reflects_flags() {
        let cmd =
            AnalyzeCmd::parse(&strings(&["--n", "100", "--field", "10000", "--rs", "500"]))
                .unwrap();
        let p = cmd.params.build().unwrap();
        assert_eq!(p.n_sensors(), 100);
        assert_eq!(p.field_area(), 1e8);
        assert_eq!(p.sensing_range(), 500.0);
    }

    #[test]
    fn invalid_params_rejected_via_fallible_path() {
        let cmd = AnalyzeCmd::parse(&strings(&["--pd", "1.4"])).unwrap();
        assert!(cmd.params.build().is_err());
    }

    #[test]
    fn unknown_backend_rejected() {
        let cmd = AnalyzeCmd::parse(&strings(&["--backend", "magic"])).unwrap();
        assert!(cmd.backend.build().unwrap_err().contains("unknown backend"));
    }

    #[test]
    fn resilience_flags_parse() {
        let cmd = AnalyzeCmd::parse(&strings(&[
            "--backend",
            "s",
            "--deadline-ms",
            "250",
            "--fallback",
            "ms",
            "--fallback",
            "poisson",
        ]))
        .unwrap();
        assert_eq!(cmd.backend.deadline(), Some(Duration::from_millis(250)));
        let chain = cmd.backend.chain().unwrap();
        assert_eq!(chain.primary.name(), "s");
        let names: Vec<_> = chain.fallbacks.iter().map(BackendSpec::name).collect();
        assert_eq!(names, vec!["ms", "poisson"]);
    }

    #[test]
    fn unknown_fallback_rejected() {
        let cmd = AnalyzeCmd::parse(&strings(&["--fallback", "magic"])).unwrap();
        assert!(cmd.backend.chain().unwrap_err().contains("unknown backend"));
    }

    #[test]
    fn store_actions_and_flags_parse() {
        let cmd = StoreCmd::parse(&strings(&["info", "--path", "a.gbdstore"])).unwrap();
        assert_eq!(cmd.action, "info");
        assert_eq!(cmd.path, "a.gbdstore");
        assert!(!cmd.json);
        let cmd = StoreCmd::parse(&strings(&[
            "warm",
            "--path",
            "b.gbdstore",
            "--n-start",
            "90",
            "--n-end",
            "180",
            "--n-step",
            "45",
            "--k",
            "3",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cmd.action, "warm");
        assert_eq!((cmd.n_start, cmd.n_end, cmd.n_step), (90, 180, 45));
        assert_eq!(cmd.params.k, 3);
        assert!(cmd.json);
    }

    #[test]
    fn store_rejects_bad_invocations() {
        assert!(StoreCmd::parse(&[])
            .unwrap_err()
            .contains("requires an action"));
        assert!(StoreCmd::parse(&strings(&["defrag", "--path", "x"]))
            .unwrap_err()
            .contains("unknown store action"));
        assert!(StoreCmd::parse(&strings(&["info"]))
            .unwrap_err()
            .contains("--path"));
        assert!(
            StoreCmd::parse(&strings(&["warm", "--path", "x", "--n-step", "0"]))
                .unwrap_err()
                .contains("--n-step")
        );
        assert!(
            StoreCmd::parse(&strings(&["info", "--path", "x", "--pth", "y"]))
                .unwrap_err()
                .contains("did you mean `--path`")
        );
    }

    #[test]
    fn serve_store_flag_parses() {
        assert_eq!(ServeCmd::parse(&[]).unwrap().store, None);
        let cmd = ServeCmd::parse(&strings(&["--store", "cache.gbdstore", "--json"])).unwrap();
        assert_eq!(cmd.store.as_deref(), Some("cache.gbdstore"));
    }

    #[test]
    fn serve_cluster_flags_parse_into_config() {
        let cmd = ServeCmd::parse(&[]).unwrap();
        assert_eq!(cmd.shard_id, None);
        assert_eq!(cmd.replicate_to, None);
        assert_eq!(cmd.replica_listen, None);
        let cmd = ServeCmd::parse(&strings(&[
            "--shard-id",
            "shard0",
            "--store",
            "s0.gbdstore",
            "--replicate-to",
            "127.0.0.1:7080",
            "--replica-listen",
            "127.0.0.1:0",
        ]))
        .unwrap();
        let config = cmd.config();
        assert_eq!(config.shard_id.as_deref(), Some("shard0"));
        assert_eq!(config.replicate_to.as_deref(), Some("127.0.0.1:7080"));
        assert_eq!(config.replica_listen.as_deref(), Some("127.0.0.1:0"));
        let err = ServeCmd::parse(&strings(&["--replicate-too", "x"])).unwrap_err();
        assert!(err.contains("did you mean `--replicate-to`"), "{err}");
    }

    #[test]
    fn route_flags_parse_into_config() {
        assert!(RouteCmd::parse(&[])
            .unwrap_err()
            .contains("at least one --shard"));
        let cmd = RouteCmd::parse(&strings(&[
            "--addr",
            "127.0.0.1:0",
            "--shard",
            "127.0.0.1:7171",
            "--shard",
            "127.0.0.1:7172",
            "--standby",
            "0:127.0.0.1:7180",
            "--vnodes",
            "16",
            "--retries",
            "5",
            "--backoff-ms",
            "2",
            "--breaker-threshold",
            "2",
            "--breaker-cooldown-ms",
            "100",
            "--heartbeat-ms",
            "50",
            "--heartbeat-misses",
            "2",
            "--upstream-timeout-ms",
            "3000",
            "--json",
        ]))
        .unwrap();
        assert!(cmd.json);
        let config = cmd.config();
        assert_eq!(config.shards.len(), 2);
        assert_eq!(config.standbys, vec![(0, "127.0.0.1:7180".to_string())]);
        assert_eq!(config.virtual_nodes, 16);
        assert_eq!(config.retries, 5);
        assert_eq!(config.backoff_base, Duration::from_millis(2));
        assert_eq!(config.breaker_threshold, 2);
        assert_eq!(config.breaker_cooldown, Duration::from_millis(100));
        assert_eq!(config.heartbeat_interval, Duration::from_millis(50));
        assert_eq!(config.heartbeat_misses, 2);
        assert_eq!(config.upstream_timeout, Duration::from_millis(3000));
        assert!(config.handle_signals);
    }

    #[test]
    fn route_rejects_bad_standbys() {
        assert!(
            RouteCmd::parse(&strings(&["--shard", "a:1", "--standby", "oops"]))
                .unwrap_err()
                .contains("slot:host:port")
        );
        assert!(
            RouteCmd::parse(&strings(&["--shard", "a:1", "--standby", "x:127.0.0.1:1"]))
                .unwrap_err()
                .contains("not a slot index")
        );
        assert!(
            RouteCmd::parse(&strings(&["--shard", "a:1", "--standby", "3:127.0.0.1:1"]))
                .unwrap_err()
                .contains("only 1 shards"),
        );
        assert!(
            RouteCmd::parse(&strings(&["--shard", "a:1", "--standby", "0:"]))
                .unwrap_err()
                .contains("must name an address")
        );
    }

    #[test]
    fn retries_flag_builds_a_policy() {
        let cmd = SimulateCmd::parse(&strings(&["--retries", "2"])).unwrap();
        assert_eq!(cmd.sim.retry_policy(), Some(RetryPolicy::new(2)));
        assert_eq!(SimulateCmd::parse(&[]).unwrap().sim.retry_policy(), None);
    }
}
