//! Points, vectors, segments and axis-aligned bounding boxes in the plane.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point in the plane (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement vector in the plane (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to another point.
    pub fn distance(&self, other: Point) -> f64 {
        (*self - other).norm()
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    pub fn distance_sq(&self, other: Point) -> f64 {
        (*self - other).norm_sq()
    }
}

impl Vector {
    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Unit vector with heading `theta` radians (0 = +x axis).
    pub fn from_heading(theta: f64) -> Self {
        Vector {
            x: theta.cos(),
            y: theta.sin(),
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared norm.
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(&self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product (signed parallelogram area).
    pub fn cross(&self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Heading angle in radians, in `(-π, π]`.
    pub fn heading(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics if the vector is zero.
    pub fn normalized(&self) -> Vector {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        *self / n
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        Vector::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    fn div(self, s: f64) -> Vector {
        Vector::new(self.x / s, self.y / s)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from endpoints (degenerate segments are allowed).
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Distance from a point to the segment (zero if the point lies on it).
    pub fn distance_to(&self, p: Point) -> f64 {
        self.distance_sq_to(p).sqrt()
    }

    /// Squared distance from a point to the segment.
    pub fn distance_sq_to(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let ap = p - self.a;
        let len_sq = ab.norm_sq();
        if len_sq == 0.0 {
            return ap.norm_sq();
        }
        let t = (ap.dot(ab) / len_sq).clamp(0.0, 1.0);
        let closest = self.a + ab * t;
        p.distance_sq(closest)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        Point::new((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    /// Smallest corner.
    pub min: Point,
    /// Largest corner.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The box `[0, w] × [0, h]`.
    pub fn from_extent(w: f64, h: f64) -> Self {
        Aabb::new(Point::ORIGIN, Point::new(w, h))
    }

    /// Box width.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether a point lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The box grown by `r` on every side.
    pub fn inflated(&self, r: f64) -> Aabb {
        Aabb {
            min: Point::new(self.min.x - r, self.min.y - r),
            max: Point::new(self.max.x + r, self.max.y + r),
        }
    }

    /// Smallest box containing both boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vector::new(3.0, 4.0));
        assert_eq!(v.norm(), 5.0);
        assert_eq!(p + v, q);
        assert_eq!(p.distance(q), 5.0);
    }

    #[test]
    fn vector_ops() {
        let v = Vector::new(3.0, 4.0);
        assert_eq!(v * 2.0, Vector::new(6.0, 8.0));
        assert_eq!(v / 2.0, Vector::new(1.5, 2.0));
        assert_eq!(-v, Vector::new(-3.0, -4.0));
        assert_eq!(v.dot(Vector::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vector::new(1.0, 0.0)), -4.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn heading_round_trip() {
        for &theta in &[0.0, 0.5, -1.2, 3.0] {
            let v = Vector::from_heading(theta);
            assert!((v.heading() - theta).abs() < 1e-12);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vector::new(0.0, 0.0).normalized();
    }

    #[test]
    fn segment_distance_interior_and_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Perpendicular foot inside the segment.
        assert!((s.distance_to(Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        // Beyond the right endpoint: distance to the endpoint.
        assert!((s.distance_to(Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
        // Beyond the left endpoint.
        assert!((s.distance_to(Point::new(-3.0, 4.0)) - 5.0).abs() < 1e-12);
        // On the segment.
        assert_eq!(s.distance_to(Point::new(7.0, 0.0)), 0.0);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.length(), 0.0);
        assert!((s.distance_to(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 6.0));
        assert_eq!(s.midpoint(), Point::new(2.0, 3.0));
    }

    #[test]
    fn aabb_basics() {
        let b = Aabb::new(Point::new(5.0, 1.0), Point::new(1.0, 3.0));
        assert_eq!(b.min, Point::new(1.0, 1.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 8.0);
        assert!(b.contains(Point::new(3.0, 2.0)));
        assert!(b.contains(Point::new(1.0, 1.0))); // boundary
        assert!(!b.contains(Point::new(0.9, 2.0)));
    }

    #[test]
    fn aabb_inflate_union() {
        let b = Aabb::from_extent(2.0, 2.0);
        let infl = b.inflated(1.0);
        assert_eq!(infl.min, Point::new(-1.0, -1.0));
        assert_eq!(infl.max, Point::new(3.0, 3.0));
        let other = Aabb::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let u = b.union(&other);
        assert_eq!(u.min, Point::ORIGIN);
        assert_eq!(u.max, Point::new(6.0, 6.0));
    }
}
