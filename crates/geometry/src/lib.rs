#![warn(missing_docs)]
//! Planar geometry substrate for the `sparse-groupdet` workspace.
//!
//! Everything the analytical model of Zhang et al. (ICDCS 2008) needs from
//! geometry lives here:
//!
//! * [`point`] — points, vectors, segments and axis-aligned boxes;
//! * [`circle`] — circles and the circle–circle intersection ("lens") area
//!   that underlies the paper's Eq (6);
//! * [`stadium`] — the stadium (capsule) shape: the Detectable Region (DR)
//!   of a target moving in a straight line during one sensing period;
//! * [`subarea`] — closed-form sizes of the Head/Body/Tail subareas
//!   (Eqs (6), (8), (10)) plus a generalized version for per-period varying
//!   step lengths (the paper's "future work" extension);
//! * [`montecarlo`] — Monte Carlo area estimation used by the test suite to
//!   cross-validate every closed form against the raw stadium definitions.
//!
//! # Example
//!
//! ```
//! use gbd_geometry::stadium::Stadium;
//! use gbd_geometry::point::Point;
//!
//! // The DR of a target that moved 600 m during one period, sensed at 1 km.
//! let dr = Stadium::new(Point::new(0.0, 0.0), Point::new(600.0, 0.0), 1000.0);
//! let expect = 2.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1000.0 * 1000.0;
//! assert!((dr.area() - expect).abs() < 1e-6);
//! ```

pub mod circle;
pub mod montecarlo;
pub mod point;
pub mod stadium;
pub mod subarea;
