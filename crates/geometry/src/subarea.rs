//! Sizes of the coverage subareas of the paper's analytical model.
//!
//! For a target moving along a straight line, the Detectable Region of
//! period `j` is the stadium around the segment `[c_{j−1}, c_j]` traversed
//! during that period (`c_j` = cumulative distance after `j` periods). The
//! M-S-approach partitions each period's **Newly Explored Detectable
//! Region** (NEDR) into subareas by *how many periods* a sensor placed there
//! covers the target:
//!
//! * Head stage (period 1): `AreaH(i)`, Eq (6);
//! * Body stage (periods `2 ..= M − ms`): `AreaB(i)`, Eq (8);
//! * Tail stage (periods `M − ms + 1 ..= M`): `AreaT_j(i)`, Eq (10).
//!
//! Two implementations are provided and cross-checked against each other and
//! against Monte Carlo sampling of the raw stadium definitions:
//!
//! * [`area_h_eq6`], [`area_b_eq8`], [`area_t_eq10`] — the paper's
//!   constant-speed closed forms, transcribed literally;
//! * [`SubareaTable`] — a generalized computation that accepts *arbitrary
//!   per-period step lengths* (the paper's §6 "varying speeds" future work),
//!   built on the identity that for collinear motion
//!   `DR(l) ∩ DR(j) = disk(c_l) ∩ disk(c_{j−1})` for `j ≥ l + 1`
//!   (the distance-to-segment function is convex along the track, so the
//!   middle constraint is implied by the outer two).

use crate::circle::lens_area;

/// Number of sensing periods a target needs to traverse one DR diameter:
/// `ms = ceil(2·Rs / step)` where `step = V·t`.
///
/// # Panics
///
/// Panics if `rs` or `step` is not finite and strictly positive.
///
/// # Example
///
/// ```
/// use gbd_geometry::subarea::ms_periods;
/// // Paper settings: Rs = 1000 m, V = 10 m/s, t = 60 s.
/// assert_eq!(ms_periods(1000.0, 600.0), 4);
/// // V = 4 m/s: step 240 m.
/// assert_eq!(ms_periods(1000.0, 240.0), 9);
/// ```
pub fn ms_periods(rs: f64, step: f64) -> usize {
    assert!(rs.is_finite() && rs > 0.0, "rs must be finite and > 0");
    assert!(
        step.is_finite() && step > 0.0,
        "step must be finite and > 0"
    );
    (2.0 * rs / step).ceil() as usize
}

/// `AreaH(i)` for `i = 1 ..= ms + 1` — the paper's Eq (6), transcribed
/// literally (including its running-sum form).
///
/// Entry `[i − 1]` is the area within the DR of period 1 in which a sensor
/// covers the target for exactly `i` periods.
///
/// # Panics
///
/// Panics if `rs` or `step` is invalid (see [`ms_periods`]).
pub fn area_h_eq6(rs: f64, step: f64) -> Vec<f64> {
    let ms = ms_periods(rs, step);
    let vt = step;
    let mut areas = vec![0.0; ms + 1];
    for i in 1..=ms + 1 {
        areas[i - 1] = if i == 1 {
            2.0 * rs * vt
        } else if i < ms + 1 {
            let prev: f64 = areas[1..i - 1].iter().sum();
            std::f64::consts::PI * rs * rs - lens_area(rs, (i - 1) as f64 * vt) - prev
        } else {
            lens_area(rs, (i - 2) as f64 * vt)
        };
        // Guard against floating point producing tiny negatives.
        areas[i - 1] = areas[i - 1].max(0.0);
    }
    areas
}

/// `AreaB(i)` for `i = 1 ..= ms + 1` — the paper's Eq (8):
/// `AreaB(i) = AreaH(i) − AreaH(i+1)` for `i ≤ ms`, `AreaB(ms+1) = AreaH(ms+1)`.
///
/// # Panics
///
/// Panics if `area_h` is empty.
pub fn area_b_eq8(area_h: &[f64]) -> Vec<f64> {
    assert!(!area_h.is_empty(), "area_h must be non-empty");
    let n = area_h.len();
    (0..n)
        .map(|idx| {
            if idx + 1 < n {
                (area_h[idx] - area_h[idx + 1]).max(0.0)
            } else {
                area_h[idx]
            }
        })
        .collect()
}

/// `AreaT_j(i)` for `i = 1 ..= ms + 1 − j` — the paper's Eq (10):
/// `AreaT_j(i) = AreaB(i)` for `i ≤ ms − j`, and the tail sum
/// `Σ_{m = ms+1−j}^{ms+1} AreaB(m)` for `i = ms + 1 − j`.
///
/// `j` ranges over `1 ..= ms` (period `T_j` is period `M − ms + j`).
///
/// # Panics
///
/// Panics if `j` is outside `1 ..= ms` where `ms = area_b.len() − 1`.
pub fn area_t_eq10(area_b: &[f64], j: usize) -> Vec<f64> {
    let ms = area_b.len() - 1;
    assert!((1..=ms).contains(&j), "tail step j={j} must be in 1..={ms}");
    let mut out = Vec::with_capacity(ms + 1 - j);
    for i in 1..=ms + 1 - j {
        if i <= ms - j {
            out.push(area_b[i - 1]);
        } else {
            out.push(area_b[ms - j..=ms].iter().sum());
        }
    }
    out
}

/// Per-period NEDR subarea sizes for a straight-line track with arbitrary
/// per-period step lengths.
///
/// The table owns the cumulative track positions `c_0 ..= c_M` and exposes,
/// for every period `l`, the vector of subarea sizes of the period's NEDR
/// indexed by coverage count. For constant steps it reproduces Eqs (6), (8)
/// and (10) exactly; for varying steps it generalizes them.
///
/// # Example
///
/// ```
/// use gbd_geometry::subarea::SubareaTable;
///
/// let table = SubareaTable::constant_speed(1000.0, 600.0, 20);
/// // The head NEDR is the full first-period DR.
/// let total: f64 = table.subareas(1).iter().sum();
/// let dr1 = 2.0 * 1000.0 * 600.0 + std::f64::consts::PI * 1000.0f64.powi(2);
/// assert!((total - dr1).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SubareaTable {
    rs: f64,
    /// Cumulative positions `c_0 ..= c_M` along the track.
    cumulative: Vec<f64>,
}

impl SubareaTable {
    /// Builds the table for `m_periods` periods of equal step length.
    ///
    /// # Panics
    ///
    /// Panics if `rs` or `step` is not finite and positive, or if
    /// `m_periods == 0`.
    pub fn constant_speed(rs: f64, step: f64, m_periods: usize) -> Self {
        assert!(m_periods > 0, "need at least one sensing period");
        assert!(
            step.is_finite() && step > 0.0,
            "step must be finite and > 0"
        );
        Self::from_steps(rs, &vec![step; m_periods])
    }

    /// Builds the table from explicit per-period step lengths (distance
    /// traveled in each period). Steps may vary but must be non-negative;
    /// a zero step models a target that pauses for a period.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, `rs` is invalid, or any step is negative
    /// or not finite.
    pub fn from_steps(rs: f64, steps: &[f64]) -> Self {
        assert!(rs.is_finite() && rs > 0.0, "rs must be finite and > 0");
        assert!(!steps.is_empty(), "need at least one sensing period");
        let mut cumulative = Vec::with_capacity(steps.len() + 1);
        cumulative.push(0.0);
        for &s in steps {
            assert!(s.is_finite() && s >= 0.0, "steps must be finite and >= 0");
            cumulative.push(cumulative.last().unwrap() + s);
        }
        SubareaTable { rs, cumulative }
    }

    /// Sensing range used to build the table.
    pub fn rs(&self) -> f64 {
        self.rs
    }

    /// Number of sensing periods `M`.
    pub fn m_periods(&self) -> usize {
        self.cumulative.len() - 1
    }

    /// Step length of period `l` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `l` is outside `1 ..= M`.
    pub fn step(&self, l: usize) -> f64 {
        self.check_period(l);
        self.cumulative[l] - self.cumulative[l - 1]
    }

    /// Area of the NEDR of period `l`: the full DR for `l = 1`
    /// (`2·Rs·L₁ + π·Rs²`), the crescent `2·Rs·L_l` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `l` is outside `1 ..= M`.
    pub fn nedr_area(&self, l: usize) -> f64 {
        self.check_period(l);
        if l == 1 {
            2.0 * self.rs * self.step(1) + std::f64::consts::PI * self.rs * self.rs
        } else {
            2.0 * self.rs * self.step(l)
        }
    }

    /// Total area of the Aggregate Region (union of all DRs):
    /// `2·Rs·(total distance) + π·Rs²`.
    pub fn aregion_area(&self) -> f64 {
        2.0 * self.rs * self.cumulative[self.m_periods()]
            + std::f64::consts::PI * self.rs * self.rs
    }

    /// `|NEDR(l) ∩ {covered for ≥ i periods}|` — the cumulative coverage
    /// area. `i = 1` gives the NEDR area itself.
    fn cumulative_coverage(&self, l: usize, i: usize) -> f64 {
        debug_assert!(i >= 1);
        if i == 1 {
            return self.nedr_area(l);
        }
        let m = self.m_periods();
        if l + i - 1 > m {
            return 0.0;
        }
        // Coverage for >= i periods within NEDR(l) means the point lies in
        // DR(l) and DR(l + i − 1) (convexity implies the periods between),
        // and, for l > 1, outside DR(l − 1).
        let far_left = self.cumulative[l + i - 2]; // left end of DR(l+i−1)
        let own_right = self.cumulative[l]; // right end of DR(l)
        let with_own = lens_area(self.rs, (far_left - own_right).max(0.0));
        if l == 1 {
            with_own
        } else {
            let prev_right = self.cumulative[l - 1];
            (with_own - lens_area(self.rs, (far_left - prev_right).max(0.0))).max(0.0)
        }
    }

    /// Subarea sizes of the NEDR of period `l`, indexed by coverage count:
    /// entry `[i − 1]` is the area where a sensor covers the target for
    /// exactly `i` periods *up to period M*. The vector has `M − l + 1`
    /// entries; trailing entries may be zero once the track outruns the DR.
    ///
    /// # Panics
    ///
    /// Panics if `l` is outside `1 ..= M`.
    pub fn subareas(&self, l: usize) -> Vec<f64> {
        self.check_period(l);
        let imax = self.m_periods() - l + 1;
        let mut out = Vec::with_capacity(imax);
        let mut cum_i = self.cumulative_coverage(l, 1);
        for i in 1..=imax {
            let cum_next = if i < imax {
                self.cumulative_coverage(l, i + 1)
            } else {
                0.0
            };
            out.push((cum_i - cum_next).max(0.0));
            cum_i = cum_next;
        }
        out
    }

    /// Aggregated `Region(i)` sizes over the whole ARegion (the S-approach
    /// partition): entry `[i − 1]` is the total area in which a sensor
    /// covers the target for exactly `i` of the `M` periods.
    pub fn region_sizes(&self) -> Vec<f64> {
        let m = self.m_periods();
        let mut out = vec![0.0; m];
        for l in 1..=m {
            for (idx, a) in self.subareas(l).into_iter().enumerate() {
                out[idx] += a;
            }
        }
        // Trim trailing zero regions (coverage counts never attained).
        while out.len() > 1 && *out.last().unwrap() == 0.0 {
            out.pop();
        }
        out
    }

    fn check_period(&self, l: usize) {
        assert!(
            (1..=self.m_periods()).contains(&l),
            "period {l} out of range 1..={}",
            self.m_periods()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const RS: f64 = 1000.0;

    #[test]
    fn ms_periods_examples() {
        assert_eq!(ms_periods(1000.0, 600.0), 4); // paper V=10 m/s
        assert_eq!(ms_periods(1000.0, 240.0), 9); // paper V=4 m/s
        assert_eq!(ms_periods(1000.0, 2000.0), 1); // exactly one period
        assert_eq!(ms_periods(1000.0, 2500.0), 1); // faster than 2Rs/period
    }

    #[test]
    fn area_h_partitions_dr1() {
        for step in [240.0, 600.0, 1000.0, 2500.0] {
            let h = area_h_eq6(RS, step);
            let total: f64 = h.iter().sum();
            let dr1 = 2.0 * RS * step + PI * RS * RS;
            assert!((total - dr1).abs() < 1e-6, "step={step}: {total} vs {dr1}");
            assert!(h.iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn area_h_first_entry_is_2rsvt() {
        let h = area_h_eq6(RS, 600.0);
        assert!((h[0] - 2.0 * RS * 600.0).abs() < 1e-9);
    }

    #[test]
    fn area_b_partitions_crescent() {
        for step in [240.0, 600.0] {
            let h = area_h_eq6(RS, step);
            let b = area_b_eq8(&h);
            let total: f64 = b.iter().sum();
            assert!((total - 2.0 * RS * step).abs() < 1e-6, "step={step}");
            assert!(b.iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn area_t_partitions_crescent_and_shrinks() {
        let h = area_h_eq6(RS, 600.0);
        let b = area_b_eq8(&h);
        let ms = b.len() - 1;
        for j in 1..=ms {
            let t = area_t_eq10(&b, j);
            assert_eq!(t.len(), ms + 1 - j);
            let total: f64 = t.iter().sum();
            assert!((total - 2.0 * RS * 600.0).abs() < 1e-6, "j={j}");
        }
    }

    #[test]
    fn area_t_last_step_is_whole_crescent() {
        let h = area_h_eq6(RS, 600.0);
        let b = area_b_eq8(&h);
        let ms = b.len() - 1;
        let t = area_t_eq10(&b, ms);
        assert_eq!(t.len(), 1);
        assert!((t[0] - 2.0 * RS * 600.0).abs() < 1e-6);
    }

    #[test]
    fn table_matches_eq6_head() {
        let m = 20;
        let table = SubareaTable::constant_speed(RS, 600.0, m);
        let h = area_h_eq6(RS, 600.0);
        let sub = table.subareas(1);
        for (i, &expect) in h.iter().enumerate() {
            assert!(
                (sub[i] - expect).abs() < 1e-6,
                "i={i}: {} vs {expect}",
                sub[i]
            );
        }
        // Beyond ms+1 coverage the subareas are zero.
        for &a in &sub[h.len()..] {
            assert_eq!(a, 0.0);
        }
    }

    #[test]
    fn table_matches_eq8_body() {
        let table = SubareaTable::constant_speed(RS, 600.0, 20);
        let b = area_b_eq8(&area_h_eq6(RS, 600.0));
        // Any body period (2 ..= M − ms) must equal Eq (8).
        for l in [2usize, 7, 16] {
            let sub = table.subareas(l);
            for (i, &expect) in b.iter().enumerate() {
                assert!((sub[i] - expect).abs() < 1e-6, "l={l} i={i}");
            }
        }
    }

    #[test]
    fn table_matches_eq10_tail() {
        let m = 20;
        let table = SubareaTable::constant_speed(RS, 600.0, m);
        let b = area_b_eq8(&area_h_eq6(RS, 600.0));
        let ms = b.len() - 1;
        for j in 1..=ms {
            let l = m - ms + j;
            let sub = table.subareas(l);
            let t = area_t_eq10(&b, j);
            assert_eq!(sub.len(), t.len(), "j={j}");
            for (i, &expect) in t.iter().enumerate() {
                assert!((sub[i] - expect).abs() < 1e-6, "j={j} i={i}");
            }
        }
    }

    #[test]
    fn table_slow_target_matches_eq_forms_too() {
        // V = 4 m/s: ms = 9, exercising a long overlap chain.
        let m = 20;
        let step = 240.0;
        let table = SubareaTable::constant_speed(RS, step, m);
        let h = area_h_eq6(RS, step);
        let b = area_b_eq8(&h);
        let sub1 = table.subareas(1);
        for (i, &e) in h.iter().enumerate() {
            assert!((sub1[i] - e).abs() < 1e-6, "head i={i}");
        }
        let sub5 = table.subareas(5);
        for (i, &e) in b.iter().enumerate() {
            assert!((sub5[i] - e).abs() < 1e-6, "body i={i}");
        }
    }

    #[test]
    fn region_sizes_partition_aregion() {
        let table = SubareaTable::constant_speed(RS, 600.0, 20);
        let total: f64 = table.region_sizes().iter().sum();
        assert!((total - table.aregion_area()).abs() < 1e-5);
    }

    #[test]
    fn varying_steps_still_partition() {
        let steps = [600.0, 200.0, 900.0, 0.0, 450.0, 600.0, 600.0, 120.0];
        let table = SubareaTable::from_steps(RS, &steps);
        let mut total = 0.0;
        for l in 1..=table.m_periods() {
            let s: f64 = table.subareas(l).iter().sum();
            assert!((s - table.nedr_area(l)).abs() < 1e-6, "period {l}");
            total += s;
        }
        assert!((total - table.aregion_area()).abs() < 1e-5);
    }

    #[test]
    fn pause_period_has_empty_nedr() {
        let table = SubareaTable::from_steps(RS, &[600.0, 0.0, 600.0]);
        assert_eq!(table.nedr_area(2), 0.0);
        assert!(table.subareas(2).iter().all(|&a| a == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn period_zero_panics() {
        SubareaTable::constant_speed(RS, 600.0, 5).subareas(0);
    }

    #[test]
    #[should_panic(expected = "tail step")]
    fn area_t_bad_j_panics() {
        let b = area_b_eq8(&area_h_eq6(RS, 600.0));
        area_t_eq10(&b, 99);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_steps() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.0f64..2_500.0, 1..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn subareas_partition_every_nedr(steps in arb_steps()) {
            let rs = 1000.0;
            let table = SubareaTable::from_steps(rs, &steps);
            for l in 1..=table.m_periods() {
                let total: f64 = table.subareas(l).iter().sum();
                prop_assert!((total - table.nedr_area(l)).abs() < 1e-5,
                    "period {l}: {total} vs {}", table.nedr_area(l));
            }
        }

        #[test]
        fn region_sizes_partition_aregion_any_steps(steps in arb_steps()) {
            let rs = 800.0;
            let table = SubareaTable::from_steps(rs, &steps);
            let total: f64 = table.region_sizes().iter().sum();
            prop_assert!((total - table.aregion_area()).abs() < 1e-5);
        }

        #[test]
        fn subareas_are_nonnegative(steps in arb_steps()) {
            let table = SubareaTable::from_steps(500.0, &steps);
            for l in 1..=table.m_periods() {
                for a in table.subareas(l) {
                    prop_assert!(a >= 0.0);
                }
            }
        }

        #[test]
        fn constant_speed_matches_eq_forms(step in 150.0f64..2_500.0, m in 2usize..24) {
            // Eq (6) assumes the paper's "general case" M > ms; the table
            // handles M <= ms too (window-truncated coverage), where the
            // closed form intentionally does not apply.
            let rs = 1000.0;
            prop_assume!(m > ms_periods(rs, step));
            let table = SubareaTable::constant_speed(rs, step, m);
            let h = area_h_eq6(rs, step);
            let sub = table.subareas(1);
            for (i, &e) in h.iter().enumerate() {
                prop_assert!((sub[i] - e).abs() < 1e-5, "i={i}: {} vs {e}", sub[i]);
            }
        }

        #[test]
        fn lens_bounded_by_disk(d in 0.0f64..3_000.0) {
            let rs = 1000.0;
            let lens = crate::circle::lens_area(rs, d);
            prop_assert!(lens >= 0.0);
            prop_assert!(lens <= std::f64::consts::PI * rs * rs + 1e-9);
        }
    }
}
