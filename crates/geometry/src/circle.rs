//! Circles and the circle–circle intersection ("lens") area.
//!
//! For a target moving in a straight line, the intersection of the
//! Detectable Regions of two non-adjacent sensing periods reduces to the
//! intersection of two equal-radius disks (see `subarea` for the proof
//! sketch); [`lens_area`] is therefore the only nontrivial area primitive
//! the paper's Eq (6) needs.

use crate::point::{Aabb, Point};

/// A circle (disk) with a center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circle {
    /// Center of the disk.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be finite and >= 0"
        );
        Circle { center, radius }
    }

    /// Disk area `π r²`.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether a point lies inside or on the circle.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Axis-aligned bounding box of the disk.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Area of the intersection with another circle.
    pub fn intersection_area(&self, other: &Circle) -> f64 {
        two_circle_intersection_area(
            self.radius,
            other.radius,
            self.center.distance(other.center),
        )
    }
}

/// Area of the intersection of two disks of **equal** radius `r` whose
/// centers are `d` apart — the "lens".
///
/// This is the quantity appearing in the paper's Eq (6):
/// `lens(d) = 2 r² acos(d / 2r) − d √(r² − (d/2)²)` for `d ≤ 2r`, and `0`
/// beyond.
///
/// # Panics
///
/// Panics if `r < 0`, `d < 0`, or either is not finite.
///
/// # Example
///
/// ```
/// use gbd_geometry::circle::lens_area;
/// // Coincident circles: the full disk.
/// assert!((lens_area(1.0, 0.0) - std::f64::consts::PI).abs() < 1e-12);
/// // Tangent circles: empty intersection.
/// assert_eq!(lens_area(1.0, 2.0), 0.0);
/// ```
pub fn lens_area(r: f64, d: f64) -> f64 {
    assert!(r.is_finite() && r >= 0.0, "radius must be finite and >= 0");
    assert!(
        d.is_finite() && d >= 0.0,
        "distance must be finite and >= 0"
    );
    if d >= 2.0 * r {
        return 0.0;
    }
    let half = d / 2.0;
    2.0 * r * r * (d / (2.0 * r)).acos() - d * (r * r - half * half).sqrt()
}

/// Area of the intersection of two disks of arbitrary radii `r1`, `r2` with
/// center distance `d` (the general asymmetric lens).
///
/// Used by coverage statistics where heterogeneous ranges appear.
///
/// # Panics
///
/// Panics if any argument is negative or not finite.
pub fn two_circle_intersection_area(r1: f64, r2: f64, d: f64) -> f64 {
    assert!(r1.is_finite() && r1 >= 0.0, "r1 must be finite and >= 0");
    assert!(r2.is_finite() && r2 >= 0.0, "r2 must be finite and >= 0");
    assert!(d.is_finite() && d >= 0.0, "d must be finite and >= 0");
    if d >= r1 + r2 {
        return 0.0;
    }
    let (small, large) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
    if d + small <= large {
        // One disk entirely inside the other.
        return std::f64::consts::PI * small * small;
    }
    let d2 = d * d;
    let r1_2 = r1 * r1;
    let r2_2 = r2 * r2;
    let alpha = ((d2 + r1_2 - r2_2) / (2.0 * d * r1))
        .clamp(-1.0, 1.0)
        .acos();
    let beta = ((d2 + r2_2 - r1_2) / (2.0 * d * r2))
        .clamp(-1.0, 1.0)
        .acos();
    r1_2 * alpha + r2_2 * beta
        - 0.5
            * ((d2 + r1_2 - r2_2) / d * r1 * alpha.sin()
                + (d2 + r2_2 - r1_2) / d * r2 * beta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn circle_contains() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(c.contains(Point::new(3.0, 1.0))); // boundary
        assert!(!c.contains(Point::new(3.1, 1.0)));
    }

    #[test]
    fn circle_area_and_bbox() {
        let c = Circle::new(Point::new(0.0, 0.0), 3.0);
        assert!((c.area() - 9.0 * PI).abs() < 1e-12);
        let b = c.bounding_box();
        assert_eq!(b.min, Point::new(-3.0, -3.0));
        assert_eq!(b.max, Point::new(3.0, 3.0));
    }

    #[test]
    fn lens_extremes() {
        assert!((lens_area(2.0, 0.0) - 4.0 * PI).abs() < 1e-12);
        assert_eq!(lens_area(2.0, 4.0), 0.0);
        assert_eq!(lens_area(2.0, 5.0), 0.0);
        assert_eq!(lens_area(0.0, 0.0), 0.0);
    }

    #[test]
    fn lens_known_value_half_radius_apart() {
        // d = r: lens = r² (2π/3 − √3/2)
        let r = 1.5;
        let expect = r * r * (2.0 * PI / 3.0 - 3f64.sqrt() / 2.0);
        assert!((lens_area(r, r) - expect).abs() < 1e-12);
    }

    #[test]
    fn lens_monotone_decreasing_in_distance() {
        let r = 1000.0;
        let mut prev = f64::INFINITY;
        for i in 0..=40 {
            let d = i as f64 * 50.0;
            let a = lens_area(r, d);
            assert!(a <= prev + 1e-9, "not monotone at d={d}");
            assert!(a >= 0.0);
            prev = a;
        }
    }

    #[test]
    fn lens_scales_quadratically() {
        // lens(kr, kd) = k² lens(r, d)
        let (r, d, k) = (1.0, 0.7, 1000.0);
        let small = lens_area(r, d);
        let big = lens_area(k * r, k * d);
        assert!((big - k * k * small).abs() / big < 1e-12);
    }

    #[test]
    fn general_intersection_matches_equal_radius_lens() {
        for &d in &[0.0, 0.3, 1.0, 1.7, 2.0, 3.0] {
            let a = two_circle_intersection_area(1.0, 1.0, d);
            let b = lens_area(1.0, d);
            assert!((a - b).abs() < 1e-12, "d={d}: {a} vs {b}");
        }
    }

    #[test]
    fn general_intersection_containment_case() {
        // Small disk fully inside the big one.
        let a = two_circle_intersection_area(1.0, 5.0, 2.0);
        assert!((a - PI).abs() < 1e-12);
    }

    #[test]
    fn circle_intersection_area_method() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(1.0, 0.0), 1.0);
        assert!((a.intersection_area(&b) - lens_area(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_panics() {
        lens_area(-1.0, 0.0);
    }
}
