//! Monte Carlo area estimation.
//!
//! Used throughout the test suite to validate the closed-form subarea
//! equations against the raw stadium definitions, and by the coverage
//! statistics in `gbd-field` to estimate union-of-disks areas that have no
//! convenient closed form.

use crate::point::{Aabb, Point};
use rand::Rng;

/// Result of a Monte Carlo area estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Estimated area.
    pub area: f64,
    /// One standard error of the estimate.
    pub std_error: f64,
    /// Number of sample points used.
    pub samples: u64,
}

impl AreaEstimate {
    /// Whether a hypothesized true area lies within `z` standard errors.
    pub fn consistent_with(&self, truth: f64, z: f64) -> bool {
        (self.area - truth).abs() <= z * self.std_error
    }
}

/// Estimates the area of `{p ∈ bounds : predicate(p)}` by uniform sampling.
///
/// The standard error follows the binomial proportion:
/// `|bounds| · sqrt(p̂(1−p̂)/n)`.
///
/// # Panics
///
/// Panics if `samples == 0` or the bounding box has zero area.
///
/// # Example
///
/// ```
/// use gbd_geometry::montecarlo::estimate_area;
/// use gbd_geometry::point::{Aabb, Point};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
/// let bounds = Aabb::from_extent(2.0, 2.0);
/// let disk = |p: Point| (p.x - 1.0).powi(2) + (p.y - 1.0).powi(2) <= 1.0;
/// let est = estimate_area(&bounds, disk, 200_000, &mut rng);
/// assert!(est.consistent_with(std::f64::consts::PI, 4.0));
/// ```
pub fn estimate_area<F, R>(
    bounds: &Aabb,
    predicate: F,
    samples: u64,
    rng: &mut R,
) -> AreaEstimate
where
    F: Fn(Point) -> bool,
    R: Rng + ?Sized,
{
    assert!(samples > 0, "need at least one sample");
    let box_area = bounds.area();
    assert!(box_area > 0.0, "bounding box must have positive area");
    let mut hits: u64 = 0;
    for _ in 0..samples {
        let p = sample_point(bounds, rng);
        if predicate(p) {
            hits += 1;
        }
    }
    let p_hat = hits as f64 / samples as f64;
    AreaEstimate {
        area: box_area * p_hat,
        std_error: box_area * (p_hat * (1.0 - p_hat) / samples as f64).sqrt(),
        samples,
    }
}

/// Draws a uniform point inside an axis-aligned box.
pub fn sample_point<R: Rng + ?Sized>(bounds: &Aabb, rng: &mut R) -> Point {
    Point::new(
        rng.gen_range(bounds.min.x..bounds.max.x),
        rng.gen_range(bounds.min.y..bounds.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circle::lens_area;
    use crate::stadium::Stadium;
    use crate::subarea::SubareaTable;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn estimates_unit_square_exactly() {
        let bounds = Aabb::from_extent(1.0, 1.0);
        let est = estimate_area(&bounds, |_| true, 1000, &mut rng(1));
        assert_eq!(est.area, 1.0);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn estimates_disk_area() {
        let bounds = Aabb::from_extent(2.0, 2.0);
        let est = estimate_area(
            &bounds,
            |p| p.distance_sq(Point::new(1.0, 1.0)) <= 1.0,
            300_000,
            &mut rng(2),
        );
        assert!(est.consistent_with(std::f64::consts::PI, 4.0), "{est:?}");
    }

    #[test]
    fn lens_area_matches_sampling() {
        let r = 1.0;
        let d = 0.8;
        let c1 = Point::new(0.0, 0.0);
        let c2 = Point::new(d, 0.0);
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(d + 1.0, 1.0));
        let est = estimate_area(
            &bounds,
            |p| p.distance_sq(c1) <= r * r && p.distance_sq(c2) <= r * r,
            400_000,
            &mut rng(3),
        );
        assert!(est.consistent_with(lens_area(r, d), 4.0), "{est:?}");
    }

    /// Builds the per-period stadium DRs for a straight track with the
    /// given steps.
    fn track_stadiums(rs: f64, steps: &[f64]) -> Vec<Stadium> {
        let mut out = Vec::new();
        let mut x = 0.0;
        for &s in steps {
            out.push(Stadium::new(Point::new(x, 0.0), Point::new(x + s, 0.0), rs));
            x += s;
        }
        out
    }

    /// Coverage count of point `p`: in how many period DRs it lies.
    fn coverage(stadiums: &[Stadium], p: Point) -> usize {
        stadiums.iter().filter(|s| s.contains(p)).count()
    }

    #[test]
    fn subarea_table_head_matches_stadium_sampling() {
        // Validate the Eq (6) closed forms against the raw definition:
        // AreaH(i) = area in DR(1) covered in exactly i periods.
        let rs = 1.0;
        let step = 0.6; // ms = 4, mirrors the paper's V = 10 m/s geometry
        let m = 8;
        let table = SubareaTable::constant_speed(rs, step, m);
        let stadiums = track_stadiums(rs, &vec![step; m]);
        let bounds = stadiums[0].bounding_box();
        let expected = table.subareas(1);
        for (idx, &area) in expected.iter().enumerate().take(5) {
            let i = idx + 1;
            let est = estimate_area(
                &bounds,
                |p| {
                    stadiums[0].contains(p)
                        && stadiums.iter().take_while(|s| s.contains(p)).count() >= 1
                        && coverage_prefix(&stadiums, p) == i
                },
                400_000,
                &mut rng(10 + idx as u64),
            );
            assert!(
                est.consistent_with(area, 4.5),
                "i={i} est={est:?} expect={area}"
            );
        }
    }

    /// Number of consecutive DRs containing `p`, starting from the first DR
    /// that contains it (for points in DR(1) this is the coverage count).
    fn coverage_prefix(stadiums: &[Stadium], p: Point) -> usize {
        coverage(stadiums, p)
    }

    #[test]
    fn subarea_table_body_matches_stadium_sampling() {
        let rs = 1.0;
        let step = 0.6;
        let m = 10;
        let l = 4; // a body period
        let table = SubareaTable::constant_speed(rs, step, m);
        let stadiums = track_stadiums(rs, &vec![step; m]);
        let bounds = stadiums[l - 1].bounding_box();
        let expected = table.subareas(l);
        for (idx, &area) in expected.iter().enumerate().take(5) {
            let i = idx + 1;
            let est = estimate_area(
                &bounds,
                |p| {
                    stadiums[l - 1].contains(p)
                        && !stadiums[l - 2].contains(p) // NEDR: not in previous DR
                        && stadiums[l - 1..].iter().filter(|s| s.contains(p)).count() == i
                },
                400_000,
                &mut rng(30 + idx as u64),
            );
            assert!(
                est.consistent_with(area, 4.5),
                "i={i} est={est:?} expect={area}"
            );
        }
    }

    #[test]
    fn varying_speed_subareas_match_stadium_sampling() {
        // The generalized table against raw stadium geometry with uneven steps.
        let rs = 1.0;
        let steps = [0.6, 0.25, 0.9, 0.4, 0.6, 0.7];
        let table = SubareaTable::from_steps(rs, &steps);
        let stadiums = track_stadiums(rs, &steps);
        let l = 3;
        let bounds = stadiums[l - 1].bounding_box();
        let expected = table.subareas(l);
        for (idx, &area) in expected.iter().enumerate() {
            let i = idx + 1;
            if area == 0.0 {
                continue;
            }
            let est = estimate_area(
                &bounds,
                |p| {
                    stadiums[l - 1].contains(p)
                        && !stadiums[l - 2].contains(p)
                        && stadiums[l - 1..].iter().filter(|s| s.contains(p)).count() == i
                },
                400_000,
                &mut rng(50 + idx as u64),
            );
            assert!(
                est.consistent_with(area, 4.5),
                "i={i} est={est:?} expect={area}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        estimate_area(&Aabb::from_extent(1.0, 1.0), |_| true, 0, &mut rng(0));
    }
}
