//! The stadium (capsule) shape: a segment dilated by a radius.
//!
//! The **Detectable Region** (DR) of a target during one sensing period is
//! exactly a stadium: the set of points within sensing range `Rs` of the
//! segment the target traversed. Its area is `2·Rs·L + π·Rs²` where `L` is
//! the distance traveled — the `2RsVt + πRs²` of the paper's Figure 1.

use crate::point::{Aabb, Point, Segment};

/// A stadium: all points within `radius` of the segment `[a, b]`.
///
/// Degenerates to a disk when `a == b` (a stationary target).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stadium {
    segment: Segment,
    radius: f64,
}

impl Stadium {
    /// Creates the stadium around segment `[a, b]` with the given radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(a: Point, b: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be finite and >= 0"
        );
        Stadium {
            segment: Segment::new(a, b),
            radius,
        }
    }

    /// The core segment.
    pub fn segment(&self) -> Segment {
        self.segment
    }

    /// The dilation radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Area `2·r·L + π·r²`.
    pub fn area(&self) -> f64 {
        2.0 * self.radius * self.segment.length()
            + std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether a point lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.segment.distance_sq_to(p) <= self.radius * self.radius
    }

    /// Distance from a point to the stadium boundary (zero inside).
    pub fn distance_to(&self, p: Point) -> f64 {
        (self.segment.distance_to(p) - self.radius).max(0.0)
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(self.segment.a, self.segment.b).inflated(self.radius)
    }

    /// The x-range the stadium can occupy inside the horizontal band
    /// `lo <= y <= hi`, or `None` if the stadium misses the band entirely.
    ///
    /// Every stadium point with `y` in the band is within `radius` of a
    /// segment point whose own `y` lies in the expanded band
    /// `[lo - radius, hi + radius]`; clipping the segment's parameter
    /// range to that band and inflating its x-extent by `radius` therefore
    /// covers all such points. The range is a tight-enough superset for
    /// grid-row pruning, not the exact intersection (the cap circles round
    /// the true shape off).
    pub fn x_span_within_y_band(&self, lo: f64, hi: f64) -> Option<(f64, f64)> {
        let (a, b) = (self.segment.a, self.segment.b);
        let (band_lo, band_hi) = (lo - self.radius, hi + self.radius);
        let dy = b.y - a.y;
        let (t0, t1) = if dy == 0.0 {
            // Horizontal (or degenerate) segment: all of it or none of it.
            if a.y < band_lo || a.y > band_hi {
                return None;
            }
            (0.0, 1.0)
        } else {
            // Parameter values where the segment crosses the band edges.
            let ta = (band_lo - a.y) / dy;
            let tb = (band_hi - a.y) / dy;
            let (s0, s1) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            if s1 < 0.0 || s0 > 1.0 {
                return None;
            }
            (s0.max(0.0), s1.min(1.0))
        };
        let x0 = a.x + t0 * (b.x - a.x);
        let x1 = a.x + t1 * (b.x - a.x);
        Some((x0.min(x1) - self.radius, x0.max(x1) + self.radius))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn area_formula() {
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(600.0, 0.0), 1000.0);
        let expect = 2.0 * 1000.0 * 600.0 + PI * 1e6;
        assert!((s.area() - expect).abs() < 1e-6);
    }

    #[test]
    fn degenerate_stadium_is_disk() {
        let s = Stadium::new(Point::new(3.0, 4.0), Point::new(3.0, 4.0), 2.0);
        assert!((s.area() - 4.0 * PI).abs() < 1e-12);
        assert!(s.contains(Point::new(5.0, 4.0)));
        assert!(!s.contains(Point::new(5.1, 4.0)));
    }

    #[test]
    fn containment_sides_and_caps() {
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        assert!(s.contains(Point::new(5.0, 1.0))); // on the side wall
        assert!(!s.contains(Point::new(5.0, 1.01)));
        assert!(s.contains(Point::new(-0.7, 0.7))); // inside the left cap
        assert!(!s.contains(Point::new(-0.8, 0.8)));
        assert!(s.contains(Point::new(11.0, 0.0))); // right cap apex
    }

    #[test]
    fn distance_to_boundary() {
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        assert_eq!(s.distance_to(Point::new(5.0, 0.5)), 0.0);
        assert!((s.distance_to(Point::new(5.0, 3.0)) - 2.0).abs() < 1e-12);
        assert!((s.distance_to(Point::new(14.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_caps() {
        let s = Stadium::new(Point::new(1.0, 2.0), Point::new(4.0, 2.0), 0.5);
        let b = s.bounding_box();
        assert_eq!(b.min, Point::new(0.5, 1.5));
        assert_eq!(b.max, Point::new(4.5, 2.5));
    }

    #[test]
    fn x_span_covers_band_points() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(21);
        for _ in 0..300 {
            let a = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let b = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let st = Stadium::new(a, b, rng.gen_range(0.1..4.0));
            let lo = rng.gen_range(-12.0..12.0);
            let hi = lo + rng.gen_range(0.0..5.0);
            // Sample points; any stadium point inside the band must fall in
            // the reported x-span.
            let bbox = st.bounding_box();
            for _ in 0..40 {
                let p = Point::new(
                    rng.gen_range(bbox.min.x..bbox.max.x),
                    rng.gen_range(bbox.min.y..bbox.max.y),
                );
                if !st.contains(p) || p.y < lo || p.y > hi {
                    continue;
                }
                let (x0, x1) = st
                    .x_span_within_y_band(lo, hi)
                    .expect("band holds a stadium point");
                assert!(
                    (x0 - 1e-9..=x1 + 1e-9).contains(&p.x),
                    "point {p:?} outside span [{x0}, {x1}]"
                );
            }
        }
    }

    #[test]
    fn x_span_misses_disjoint_band() {
        let st = Stadium::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        assert_eq!(st.x_span_within_y_band(2.0, 3.0), None);
        assert_eq!(st.x_span_within_y_band(-5.0, -1.5), None);
        // Band touching the stadium's top edge still reports a span.
        let (x0, x1) = st.x_span_within_y_band(1.0, 2.0).expect("touching band");
        assert!(x0 <= -1.0 && x1 >= 11.0);
    }

    #[test]
    fn x_span_tracks_a_slanted_segment() {
        // Segment from (0,0) to (10,10), radius 1: the band y in [4,6]
        // clips the segment to x in [3,7], inflated by 1.
        let st = Stadium::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0), 1.0);
        let (x0, x1) = st.x_span_within_y_band(4.0, 6.0).expect("crossing band");
        assert!((x0 - 2.0).abs() < 1e-12, "x0={x0}");
        assert!((x1 - 8.0).abs() < 1e-12, "x1={x1}");
    }

    #[test]
    fn x_span_degenerate_stadium() {
        let st = Stadium::new(Point::new(3.0, 4.0), Point::new(3.0, 4.0), 2.0);
        let (x0, x1) = st.x_span_within_y_band(5.0, 9.0).expect("disk meets band");
        assert_eq!((x0, x1), (1.0, 5.0));
        assert_eq!(st.x_span_within_y_band(6.1, 9.0), None);
    }

    #[test]
    fn stadium_orientation_invariance() {
        // Same segment rotated: containment decisions follow rotation.
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(0.0, 10.0), 1.0);
        assert!(s.contains(Point::new(1.0, 5.0)));
        assert!(!s.contains(Point::new(1.01, 5.0)));
    }
}

/// Length of the part of segment `[a, b]` lying inside the disk of the
/// given center and radius — the *exposure length*: how far the target
/// travels through a sensor's sensing disk during one period.
///
/// The paper's footnote 1 assumes `Pd` is independent of this quantity
/// ("primarily for ease of analysis... revisited in future work"); the
/// exposure-dependent sensing model uses it directly.
///
/// # Panics
///
/// Panics if `radius` is negative or not finite.
///
/// # Example
///
/// ```
/// use gbd_geometry::point::Point;
/// use gbd_geometry::stadium::segment_disk_overlap;
///
/// // A 10 m segment passing straight through a unit disk at the origin.
/// let len = segment_disk_overlap(
///     Point::new(-5.0, 0.0),
///     Point::new(5.0, 0.0),
///     Point::new(0.0, 0.0),
///     1.0,
/// );
/// assert!((len - 2.0).abs() < 1e-12);
/// ```
pub fn segment_disk_overlap(a: Point, b: Point, center: Point, radius: f64) -> f64 {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius must be finite and >= 0"
    );
    let d = b - a;
    let len_sq = d.norm_sq();
    if len_sq == 0.0 {
        return 0.0; // a point has no path length
    }
    // Solve |a + t d − c|² = r² for t.
    let f = a - center;
    let qa = len_sq;
    let qb = 2.0 * f.dot(d);
    let qc = f.norm_sq() - radius * radius;
    let disc = qb * qb - 4.0 * qa * qc;
    if disc <= 0.0 {
        return 0.0;
    }
    let sqrt_disc = disc.sqrt();
    let t0 = ((-qb - sqrt_disc) / (2.0 * qa)).clamp(0.0, 1.0);
    let t1 = ((-qb + sqrt_disc) / (2.0 * qa)).clamp(0.0, 1.0);
    (t1 - t0) * len_sq.sqrt()
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    #[test]
    fn full_diameter_crossing() {
        let len = segment_disk_overlap(
            Point::new(-10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::ORIGIN,
            3.0,
        );
        assert!((len - 6.0).abs() < 1e-12);
    }

    #[test]
    fn chord_at_offset() {
        // Line y = 4 through a radius-5 disk: chord 2·sqrt(25−16) = 6.
        let len = segment_disk_overlap(
            Point::new(-10.0, 4.0),
            Point::new(10.0, 4.0),
            Point::ORIGIN,
            5.0,
        );
        assert!((len - 6.0).abs() < 1e-12);
    }

    #[test]
    fn miss_and_tangent() {
        assert_eq!(
            segment_disk_overlap(
                Point::new(-1.0, 2.0),
                Point::new(1.0, 2.0),
                Point::ORIGIN,
                1.0
            ),
            0.0
        );
        // Tangent line: zero-length intersection.
        let t = segment_disk_overlap(
            Point::new(-1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::ORIGIN,
            1.0,
        );
        assert!(t.abs() < 1e-9);
    }

    #[test]
    fn segment_ends_inside_disk() {
        // Segment starts at the center and leaves: overlap = radius.
        let len =
            segment_disk_overlap(Point::ORIGIN, Point::new(10.0, 0.0), Point::ORIGIN, 2.0);
        assert!((len - 2.0).abs() < 1e-12);
        // Fully inside: overlap = its own length.
        let len = segment_disk_overlap(
            Point::new(-0.5, 0.0),
            Point::new(0.5, 0.0),
            Point::ORIGIN,
            2.0,
        );
        assert!((len - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_has_zero_exposure() {
        assert_eq!(
            segment_disk_overlap(
                Point::new(1.0, 0.0),
                Point::new(1.0, 0.0),
                Point::ORIGIN,
                5.0
            ),
            0.0
        );
    }

    #[test]
    fn overlap_bounded_by_segment_and_diameter() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(8);
        for _ in 0..500 {
            let a = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let b = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let c = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let r = rng.gen_range(0.1..5.0);
            let len = segment_disk_overlap(a, b, c, r);
            assert!(len >= 0.0);
            assert!(len <= a.distance(b) + 1e-9);
            assert!(len <= 2.0 * r + 1e-9);
        }
    }
}
