//! The stadium (capsule) shape: a segment dilated by a radius.
//!
//! The **Detectable Region** (DR) of a target during one sensing period is
//! exactly a stadium: the set of points within sensing range `Rs` of the
//! segment the target traversed. Its area is `2·Rs·L + π·Rs²` where `L` is
//! the distance traveled — the `2RsVt + πRs²` of the paper's Figure 1.

use crate::point::{Aabb, Point, Segment};

/// A stadium: all points within `radius` of the segment `[a, b]`.
///
/// Degenerates to a disk when `a == b` (a stationary target).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stadium {
    segment: Segment,
    radius: f64,
}

impl Stadium {
    /// Creates the stadium around segment `[a, b]` with the given radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(a: Point, b: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be finite and >= 0"
        );
        Stadium {
            segment: Segment::new(a, b),
            radius,
        }
    }

    /// The core segment.
    pub fn segment(&self) -> Segment {
        self.segment
    }

    /// The dilation radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Area `2·r·L + π·r²`.
    pub fn area(&self) -> f64 {
        2.0 * self.radius * self.segment.length()
            + std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether a point lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.segment.distance_sq_to(p) <= self.radius * self.radius
    }

    /// Distance from a point to the stadium boundary (zero inside).
    pub fn distance_to(&self, p: Point) -> f64 {
        (self.segment.distance_to(p) - self.radius).max(0.0)
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(self.segment.a, self.segment.b).inflated(self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn area_formula() {
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(600.0, 0.0), 1000.0);
        let expect = 2.0 * 1000.0 * 600.0 + PI * 1e6;
        assert!((s.area() - expect).abs() < 1e-6);
    }

    #[test]
    fn degenerate_stadium_is_disk() {
        let s = Stadium::new(Point::new(3.0, 4.0), Point::new(3.0, 4.0), 2.0);
        assert!((s.area() - 4.0 * PI).abs() < 1e-12);
        assert!(s.contains(Point::new(5.0, 4.0)));
        assert!(!s.contains(Point::new(5.1, 4.0)));
    }

    #[test]
    fn containment_sides_and_caps() {
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        assert!(s.contains(Point::new(5.0, 1.0))); // on the side wall
        assert!(!s.contains(Point::new(5.0, 1.01)));
        assert!(s.contains(Point::new(-0.7, 0.7))); // inside the left cap
        assert!(!s.contains(Point::new(-0.8, 0.8)));
        assert!(s.contains(Point::new(11.0, 0.0))); // right cap apex
    }

    #[test]
    fn distance_to_boundary() {
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        assert_eq!(s.distance_to(Point::new(5.0, 0.5)), 0.0);
        assert!((s.distance_to(Point::new(5.0, 3.0)) - 2.0).abs() < 1e-12);
        assert!((s.distance_to(Point::new(14.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_caps() {
        let s = Stadium::new(Point::new(1.0, 2.0), Point::new(4.0, 2.0), 0.5);
        let b = s.bounding_box();
        assert_eq!(b.min, Point::new(0.5, 1.5));
        assert_eq!(b.max, Point::new(4.5, 2.5));
    }

    #[test]
    fn stadium_orientation_invariance() {
        // Same segment rotated: containment decisions follow rotation.
        let s = Stadium::new(Point::new(0.0, 0.0), Point::new(0.0, 10.0), 1.0);
        assert!(s.contains(Point::new(1.0, 5.0)));
        assert!(!s.contains(Point::new(1.01, 5.0)));
    }
}

/// Length of the part of segment `[a, b]` lying inside the disk of the
/// given center and radius — the *exposure length*: how far the target
/// travels through a sensor's sensing disk during one period.
///
/// The paper's footnote 1 assumes `Pd` is independent of this quantity
/// ("primarily for ease of analysis... revisited in future work"); the
/// exposure-dependent sensing model uses it directly.
///
/// # Panics
///
/// Panics if `radius` is negative or not finite.
///
/// # Example
///
/// ```
/// use gbd_geometry::point::Point;
/// use gbd_geometry::stadium::segment_disk_overlap;
///
/// // A 10 m segment passing straight through a unit disk at the origin.
/// let len = segment_disk_overlap(
///     Point::new(-5.0, 0.0),
///     Point::new(5.0, 0.0),
///     Point::new(0.0, 0.0),
///     1.0,
/// );
/// assert!((len - 2.0).abs() < 1e-12);
/// ```
pub fn segment_disk_overlap(a: Point, b: Point, center: Point, radius: f64) -> f64 {
    assert!(
        radius.is_finite() && radius >= 0.0,
        "radius must be finite and >= 0"
    );
    let d = b - a;
    let len_sq = d.norm_sq();
    if len_sq == 0.0 {
        return 0.0; // a point has no path length
    }
    // Solve |a + t d − c|² = r² for t.
    let f = a - center;
    let qa = len_sq;
    let qb = 2.0 * f.dot(d);
    let qc = f.norm_sq() - radius * radius;
    let disc = qb * qb - 4.0 * qa * qc;
    if disc <= 0.0 {
        return 0.0;
    }
    let sqrt_disc = disc.sqrt();
    let t0 = ((-qb - sqrt_disc) / (2.0 * qa)).clamp(0.0, 1.0);
    let t1 = ((-qb + sqrt_disc) / (2.0 * qa)).clamp(0.0, 1.0);
    (t1 - t0) * len_sq.sqrt()
}

#[cfg(test)]
mod overlap_tests {
    use super::*;

    #[test]
    fn full_diameter_crossing() {
        let len = segment_disk_overlap(
            Point::new(-10.0, 0.0),
            Point::new(10.0, 0.0),
            Point::ORIGIN,
            3.0,
        );
        assert!((len - 6.0).abs() < 1e-12);
    }

    #[test]
    fn chord_at_offset() {
        // Line y = 4 through a radius-5 disk: chord 2·sqrt(25−16) = 6.
        let len = segment_disk_overlap(
            Point::new(-10.0, 4.0),
            Point::new(10.0, 4.0),
            Point::ORIGIN,
            5.0,
        );
        assert!((len - 6.0).abs() < 1e-12);
    }

    #[test]
    fn miss_and_tangent() {
        assert_eq!(
            segment_disk_overlap(
                Point::new(-1.0, 2.0),
                Point::new(1.0, 2.0),
                Point::ORIGIN,
                1.0
            ),
            0.0
        );
        // Tangent line: zero-length intersection.
        let t = segment_disk_overlap(
            Point::new(-1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::ORIGIN,
            1.0,
        );
        assert!(t.abs() < 1e-9);
    }

    #[test]
    fn segment_ends_inside_disk() {
        // Segment starts at the center and leaves: overlap = radius.
        let len =
            segment_disk_overlap(Point::ORIGIN, Point::new(10.0, 0.0), Point::ORIGIN, 2.0);
        assert!((len - 2.0).abs() < 1e-12);
        // Fully inside: overlap = its own length.
        let len = segment_disk_overlap(
            Point::new(-0.5, 0.0),
            Point::new(0.5, 0.0),
            Point::ORIGIN,
            2.0,
        );
        assert!((len - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_has_zero_exposure() {
        assert_eq!(
            segment_disk_overlap(
                Point::new(1.0, 0.0),
                Point::new(1.0, 0.0),
                Point::ORIGIN,
                5.0
            ),
            0.0
        );
    }

    #[test]
    fn overlap_bounded_by_segment_and_diameter() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(8);
        for _ in 0..500 {
            let a = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let b = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let c = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let r = rng.gen_range(0.1..5.0);
            let len = segment_disk_overlap(a, b, c, r);
            assert!(len >= 0.0);
            assert!(len <= a.distance(b) + 1e-9);
            assert!(len <= 2.0 * r + 1e-9);
        }
    }
}
