//! The indexed sensor field with range queries and boundary policies.
//!
//! The spatial hash is stored in CSR (compressed sparse row) form: one
//! flat `entries` array of sensor indices grouped by cell, and a
//! `starts` offset array with one slot per cell, built by a two-pass
//! counting sort with zero per-cell allocation. The grid side scales
//! with `sqrt(N)` (clamped at 4096) instead of the old hard 256×256
//! cap, so million-sensor fields keep a few sensors per cell.
//!
//! For the simulator's per-trial hot path the field additionally
//! supports a *focus*: [`SensorField::rebuild_focused`] indexes only the
//! sensors that can answer queries inside a caller-provided box (the
//! union of the trial's Detectable-Region bounding boxes). Queries whose
//! bbox lies inside the focus — all of the engine's — are answered
//! exactly from the small index; anything else falls back to a full
//! scan, so the focus is a performance hint, never a correctness trade.

use crate::sensor::{Sensor, SensorId};
use gbd_geometry::point::{Aabb, Point, Segment};
use gbd_geometry::stadium::Stadium;

/// How the field treats its borders during range queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryPolicy {
    /// The field ends at its borders; a query region reaching beyond simply
    /// finds fewer sensors there (real deployments behave this way).
    Bounded,
    /// The field wraps around (a torus): queries see periodic images of the
    /// sensors. This reproduces the analytical model's implicit assumption
    /// that the target's Aggregate Region sees full sensor density
    /// everywhere.
    Torus,
}

/// Hard cap on the grid side length; `sqrt(10^6) = 1000` sits well under
/// it, and the `starts` array stays below `4096² * 4 B = 64 MiB` even for
/// adversarially large deployments.
const MAX_GRID: usize = 4096;

/// Build pass chunk: cell ids for a chunk are computed in a tight
/// vectorizable loop, then the histogram increments run over the chunk
/// while it is still in L1.
const CHUNK: usize = 2048;

/// A set of deployed sensors indexed by a uniform spatial hash grid.
///
/// Queries return sensors whose position lies inside a disk or stadium.
/// Under [`BoundaryPolicy::Torus`], a sensor matches if **any** of its
/// periodic images does; each sensor is reported at most once per query.
///
/// # Example
///
/// ```
/// use gbd_field::field::{BoundaryPolicy, SensorField};
/// use gbd_geometry::point::{Aabb, Point};
///
/// let extent = Aabb::from_extent(100.0, 100.0);
/// let field = SensorField::new(
///     extent,
///     vec![Point::new(5.0, 5.0), Point::new(95.0, 5.0)],
///     BoundaryPolicy::Torus,
/// );
/// // Under the torus policy, the sensor at x = 95 is only 10 m away from
/// // the one at x = 5 (wrapping the border).
/// let hits = field.query_circle(Point::new(0.0, 5.0), 6.0);
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SensorField {
    extent: Aabb,
    positions: Vec<Point>,
    boundary: BoundaryPolicy,
    // CSR spatial hash: entries[starts[c] .. starts[c + 1]] holds the
    // indices of the indexed sensors in cell c = cy * nx + cx.
    starts: Vec<u32>,
    entries: Vec<u32>,
    // Build scratch (per-sensor cell ids, or the kept list when focused);
    // retained so rebuilds on a long-lived field allocate nothing.
    cell_scratch: Vec<u32>,
    nx: usize,
    ny: usize,
    inv_w: f64,
    inv_h: f64,
    focus: Option<Aabb>,
}

impl SensorField {
    /// Builds a field from sensor positions, indexing all of them.
    ///
    /// # Panics
    ///
    /// Panics if the extent has zero area or a sensor lies outside it.
    pub fn new(extent: Aabb, positions: Vec<Point>, boundary: BoundaryPolicy) -> Self {
        let mut field = SensorField {
            extent,
            positions,
            boundary,
            starts: Vec::new(),
            entries: Vec::new(),
            cell_scratch: Vec::new(),
            nx: 1,
            ny: 1,
            inv_w: 0.0,
            inv_h: 0.0,
            focus: None,
        };
        field.reindex(None);
        field
    }

    /// Clears the field, refills its position buffer through `fill`, and
    /// reindexes every sensor. All internal buffers are reused, so a
    /// long-lived field rebuilds without heap allocation once warm.
    ///
    /// # Panics
    ///
    /// Panics if the extent has zero area or a filled position lies
    /// outside it.
    pub fn rebuild_with(
        &mut self,
        extent: Aabb,
        boundary: BoundaryPolicy,
        fill: impl FnOnce(&mut Vec<Point>),
    ) {
        self.extent = extent;
        self.boundary = boundary;
        self.positions.clear();
        fill(&mut self.positions);
        self.reindex(None);
    }

    /// Like [`SensorField::rebuild_with`], but `fill` additionally returns
    /// a *focus* box (plus an arbitrary carry value handed back to the
    /// caller), and only the sensors able to answer queries inside the
    /// focus are indexed.
    ///
    /// The filter keeps every sensor lying in any boundary-policy translate
    /// image of the focus box (clipped to the extent), so a query whose
    /// bounding box fits inside the focus is answered exactly; queries
    /// reaching outside it take a correct full-scan fallback. The carry
    /// value lets the caller derive the focus from data it computes while
    /// filling (the simulator returns the trial trajectory through it).
    ///
    /// # Panics
    ///
    /// Panics if the extent has zero area or a filled position lies
    /// outside it.
    pub fn rebuild_focused<T>(
        &mut self,
        extent: Aabb,
        boundary: BoundaryPolicy,
        fill: impl FnOnce(&mut Vec<Point>) -> (Aabb, T),
    ) -> T {
        self.extent = extent;
        self.boundary = boundary;
        self.positions.clear();
        let (focus, carry) = fill(&mut self.positions);
        self.reindex(Some(focus));
        carry
    }

    /// Reindexes the existing positions around a new focus box without
    /// touching the positions themselves (same deployment, new query
    /// corridor).
    pub fn refocus(&mut self, focus: Aabb) {
        self.reindex(Some(focus));
    }

    /// Field extent.
    pub fn extent(&self) -> Aabb {
        self.extent
    }

    /// Boundary policy used by queries.
    pub fn boundary(&self) -> BoundaryPolicy {
        self.boundary
    }

    /// Number of deployed sensors (indexed or not).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the field has no sensors.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// All sensor positions, ordered by id.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The focus box this field was last indexed around, if any.
    pub fn focus(&self) -> Option<Aabb> {
        self.focus
    }

    /// All sensors, ordered by id.
    pub fn sensors(&self) -> impl Iterator<Item = Sensor> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &pos)| Sensor::new(SensorId(i), pos))
    }

    /// The sensor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn sensor(&self, id: SensorId) -> Sensor {
        Sensor::new(id, self.positions[id.0])
    }

    /// Sensors within distance `radius` of `center` (inclusive).
    pub fn query_circle(&self, center: Point, radius: f64) -> Vec<SensorId> {
        // A disk is a degenerate stadium.
        self.query_stadium(&Stadium::new(center, center, radius))
    }

    /// Sensors inside the stadium (the Detectable Region query used every
    /// sensing period by the simulator), sorted by id.
    pub fn query_stadium(&self, region: &Stadium) -> Vec<SensorId> {
        let mut out = Vec::new();
        self.query_stadium_into(region, &mut out);
        out
    }

    /// Like [`SensorField::query_stadium`], but writes the hits into a
    /// caller-owned buffer (cleared first) so the steady-state query path
    /// performs no heap allocation.
    pub fn query_stadium_into(&self, region: &Stadium, out: &mut Vec<SensorId>) {
        out.clear();
        let bbox = region.bounding_box();
        if let Some(f) = &self.focus {
            if !contains_box(f, &bbox) {
                // The index only covers the focus corridor; answer from a
                // full scan instead (identical results, just slower).
                self.query_brute_force(region, out);
                return;
            }
        }
        match self.boundary {
            BoundaryPolicy::Bounded => {
                self.collect_cells(region, out);
                out.sort_unstable();
            }
            BoundaryPolicy::Torus => {
                if strictly_inside(&self.extent, &bbox) {
                    // Border-aware fast path: every off-center translate
                    // image's bbox lands strictly outside the extent, so
                    // only the center image can match and the hits are
                    // already duplicate-free.
                    self.collect_cells(region, out);
                    out.sort_unstable();
                } else {
                    // A sensor image s + (dx, dy) lies in `region` iff s
                    // lies in the region translated by (−dx, −dy); test
                    // the 9 translates.
                    for seg in self.torus_images(region) {
                        let shifted = Stadium::new(seg.a, seg.b, region.radius());
                        self.collect_cells(&shifted, out);
                    }
                    out.sort_unstable();
                    out.dedup();
                }
            }
        }
    }

    /// Number of sensors inside the stadium; equal to
    /// `query_stadium(region).len()` but allocation-free (torus duplicates
    /// are suppressed by counting each sensor only at the first translate
    /// image it matches).
    pub fn count_in_stadium(&self, region: &Stadium) -> usize {
        let bbox = region.bounding_box();
        if let Some(f) = &self.focus {
            if !contains_box(f, &bbox) {
                return self.count_brute_force(region);
            }
        }
        match self.boundary {
            BoundaryPolicy::Bounded => self.count_cells(region, &[]),
            BoundaryPolicy::Torus => {
                if strictly_inside(&self.extent, &bbox) {
                    self.count_cells(region, &[])
                } else {
                    let images = self.torus_images(region);
                    let mut count = 0;
                    for (j, seg) in images.iter().enumerate() {
                        let shifted = Stadium::new(seg.a, seg.b, region.radius());
                        count += self.count_cells(&shifted, &images[..j]);
                    }
                    count
                }
            }
        }
    }

    /// The 9 torus translate images of the query's core segment, center
    /// included, in the fixed translate order all torus paths share.
    fn torus_images(&self, region: &Stadium) -> [Segment; 9] {
        let w = self.extent.width();
        let h = self.extent.height();
        let seg = region.segment();
        let mut images = [seg; 9];
        let mut k = 0;
        for ix in -1..=1i32 {
            for iy in -1..=1i32 {
                let off_x = -(ix as f64) * w;
                let off_y = -(iy as f64) * h;
                images[k] = Segment::new(
                    Point::new(seg.a.x + off_x, seg.a.y + off_y),
                    Point::new(seg.b.x + off_x, seg.b.y + off_y),
                );
                k += 1;
            }
        }
        images
    }

    /// Collects indexed sensors inside one stadium (no wrapping), pruning
    /// each grid row to the x-interval the capsule actually crosses.
    fn collect_cells(&self, region: &Stadium, out: &mut Vec<SensorId>) {
        let r_sq = region.radius() * region.radius();
        let seg = region.segment();
        self.for_each_candidate_run(region, |entries, positions| {
            for &idx in entries {
                if seg.distance_sq_to(positions[idx as usize]) <= r_sq {
                    out.push(SensorId(idx as usize));
                }
            }
        });
    }

    /// Counts indexed sensors inside one stadium, skipping any sensor
    /// already matched by an `earlier` translate image (the torus
    /// first-match dedup rule).
    fn count_cells(&self, region: &Stadium, earlier: &[Segment]) -> usize {
        let r_sq = region.radius() * region.radius();
        let seg = region.segment();
        let mut count = 0;
        self.for_each_candidate_run(region, |entries, positions| {
            for &idx in entries {
                let p = positions[idx as usize];
                if seg.distance_sq_to(p) <= r_sq
                    && !earlier.iter().any(|e| e.distance_sq_to(p) <= r_sq)
                {
                    count += 1;
                }
            }
        });
        count
    }

    /// Walks the contiguous `entries` run of every grid row the query
    /// bbox touches, pruned per row to the x-span the capsule intersects.
    fn for_each_candidate_run(
        &self,
        region: &Stadium,
        mut visit: impl FnMut(&[u32], &[Point]),
    ) {
        let bbox = region.bounding_box();
        if bbox.max.x < self.extent.min.x
            || bbox.min.x > self.extent.max.x
            || bbox.max.y < self.extent.min.y
            || bbox.min.y > self.extent.max.y
        {
            return;
        }
        let gx_lo = self.clamp_cx(bbox.min.x);
        let gx_hi = self.clamp_cx(bbox.max.x);
        let gy0 = self.clamp_cy(bbox.min.y);
        let gy1 = self.clamp_cy(bbox.max.y);
        let cell_h = self.extent.height() / self.ny as f64;
        // Cell assignment rounds through inv_h, the band bounds through
        // cell_h; pad the band so a one-ulp disagreement between the two
        // mappings cannot drop a sensor the row actually holds.
        let pad = cell_h * 1e-9;
        for cy in gy0..=gy1 {
            let band_lo = self.extent.min.y + cy as f64 * cell_h;
            let Some((x0, x1)) =
                region.x_span_within_y_band(band_lo - pad, band_lo + cell_h + pad)
            else {
                continue;
            };
            let gx0 = self.clamp_cx(x0).max(gx_lo);
            let gx1 = self.clamp_cx(x1).min(gx_hi);
            if gx0 > gx1 {
                continue;
            }
            // Cells gx0..=gx1 of a row are one contiguous entries run.
            let row = cy * self.nx;
            let s = self.starts[row + gx0] as usize;
            let e = self.starts[row + gx1 + 1] as usize;
            visit(&self.entries[s..e], &self.positions);
        }
    }

    /// Full-scan fallback for queries outside the focus corridor: exact
    /// under both boundary policies, with the torus first-match rule
    /// producing the same sorted, duplicate-free ids the indexed path
    /// sorts into.
    fn query_brute_force(&self, region: &Stadium, out: &mut Vec<SensorId>) {
        let r_sq = region.radius() * region.radius();
        match self.boundary {
            BoundaryPolicy::Bounded => {
                let seg = region.segment();
                for (i, p) in self.positions.iter().enumerate() {
                    if seg.distance_sq_to(*p) <= r_sq {
                        out.push(SensorId(i));
                    }
                }
            }
            BoundaryPolicy::Torus => {
                let images = self.torus_images(region);
                for (i, p) in self.positions.iter().enumerate() {
                    if images.iter().any(|seg| seg.distance_sq_to(*p) <= r_sq) {
                        out.push(SensorId(i));
                    }
                }
            }
        }
    }

    /// Allocation-free counting twin of [`SensorField::query_brute_force`].
    fn count_brute_force(&self, region: &Stadium) -> usize {
        let r_sq = region.radius() * region.radius();
        match self.boundary {
            BoundaryPolicy::Bounded => {
                let seg = region.segment();
                self.positions
                    .iter()
                    .filter(|p| seg.distance_sq_to(**p) <= r_sq)
                    .count()
            }
            BoundaryPolicy::Torus => {
                let images = self.torus_images(region);
                self.positions
                    .iter()
                    .filter(|p| images.iter().any(|seg| seg.distance_sq_to(**p) <= r_sq))
                    .count()
            }
        }
    }

    fn clamp_cx(&self, x: f64) -> usize {
        ((((x - self.extent.min.x) * self.inv_w).floor() as i64).clamp(0, self.nx as i64 - 1))
            as usize
    }

    fn clamp_cy(&self, y: f64) -> usize {
        ((((y - self.extent.min.y) * self.inv_h).floor() as i64).clamp(0, self.ny as i64 - 1))
            as usize
    }

    /// Sizes the grid for `occupants` indexed sensors (about one per
    /// cell) and zeroes the offset array.
    fn set_grid(&mut self, occupants: usize) {
        let target = (occupants.max(1) as f64).sqrt().ceil() as usize;
        let side = target.clamp(1, MAX_GRID);
        self.nx = side;
        self.ny = side;
        self.inv_w = side as f64 / self.extent.width();
        self.inv_h = side as f64 / self.extent.height();
        let ncells = side * side;
        if self.starts.len() == ncells + 1 {
            self.starts.fill(0);
        } else {
            self.starts.clear();
            self.starts.resize(ncells + 1, 0);
        }
    }

    fn reindex(&mut self, focus: Option<Aabb>) {
        assert!(
            self.extent.area() > 0.0,
            "field extent must have positive area"
        );
        assert!(
            self.positions.len() <= u32::MAX as usize,
            "sensor count exceeds the index width"
        );
        self.focus = focus;
        match focus {
            None => self.index_all(),
            Some(f) => self.index_focused(&f),
        }
    }

    /// Indexes every sensor: chunked two-pass counting sort into CSR.
    fn index_all(&mut self) {
        let n = self.positions.len();
        self.set_grid(n);
        // Length adjustments only — every slot is overwritten below, so a
        // warm rebuild never pays a redundant memset of the big arrays.
        self.cell_scratch.resize(n, 0);
        self.entries.resize(n, 0);
        let extent = self.extent;
        let (inv_w, inv_h) = (self.inv_w, self.inv_h);
        let nx = self.nx as u32;
        let (nxm1, nym1) = ((self.nx - 1) as u32, (self.ny - 1) as u32);
        let ncells = self.nx * self.ny;
        let SensorField {
            positions,
            starts,
            entries,
            cell_scratch,
            ..
        } = self;
        // Pass 1: per-chunk cell ids, then histogram increments while the
        // chunk is hot.
        let mut base = 0usize;
        for (pc, ic) in positions.chunks(CHUNK).zip(cell_scratch.chunks_mut(CHUNK)) {
            for (j, (p, cid)) in pc.iter().zip(ic.iter_mut()).enumerate() {
                assert!(
                    extent.contains(*p),
                    "sensor {} lies outside the field extent",
                    base + j
                );
                let cx = (((p.x - extent.min.x) * inv_w) as u32).min(nxm1);
                let cy = (((p.y - extent.min.y) * inv_h) as u32).min(nym1);
                *cid = cy * nx + cx;
            }
            for &cid in ic.iter() {
                starts[cid as usize + 1] += 1;
            }
            base += pc.len();
        }
        // Prefix sum, scatter using the offsets as cursors, then shift the
        // cursors back into place.
        for c in 0..ncells {
            starts[c + 1] += starts[c];
        }
        for (i, &cid) in cell_scratch.iter().enumerate() {
            let slot = starts[cid as usize];
            entries[slot as usize] = i as u32;
            starts[cid as usize] = slot + 1;
        }
        for c in (1..=ncells).rev() {
            starts[c] = starts[c - 1];
        }
        starts[0] = 0;
    }

    /// Indexes only the sensors inside a translate image of the focus box:
    /// one streaming filter pass over all positions, then the counting
    /// sort over the (typically tiny) kept set.
    fn index_focused(&mut self, focus: &Aabb) {
        // A query with bbox ⊆ focus tests sensors against up to 9
        // translate images of itself, each of which lies inside the same
        // translate image of the focus; keeping every sensor in any
        // clipped focus image therefore preserves exactness.
        let mut rects = [*focus; 9];
        let mut nrects = 0;
        match self.boundary {
            BoundaryPolicy::Bounded => {
                if let Some(r) = clip(focus, &self.extent) {
                    rects[0] = r;
                    nrects = 1;
                }
            }
            BoundaryPolicy::Torus => {
                let w = self.extent.width();
                let h = self.extent.height();
                for ix in -1..=1i32 {
                    for iy in -1..=1i32 {
                        let shifted = Aabb {
                            min: Point::new(
                                focus.min.x + ix as f64 * w,
                                focus.min.y + iy as f64 * h,
                            ),
                            max: Point::new(
                                focus.max.x + ix as f64 * w,
                                focus.max.y + iy as f64 * h,
                            ),
                        };
                        if let Some(r) = clip(&shifted, &self.extent) {
                            rects[nrects] = r;
                            nrects += 1;
                        }
                    }
                }
            }
        }
        let extent = self.extent;
        self.cell_scratch.clear();
        {
            let SensorField {
                positions,
                cell_scratch,
                ..
            } = self;
            let rects = &rects[..nrects];
            // This scan touches every one of the N positions on every
            // focused rebuild, so it is the per-trial cost floor at large
            // N. Non-short-circuiting `&`/`|` keep the body straight-line
            // float compares; the containment check accumulates into a
            // flag and only the (never-taken) failure path re-scans to
            // name the offending sensor.
            let inside = |r: &Aabb, p: Point| {
                (p.x >= r.min.x) & (p.x <= r.max.x) & (p.y >= r.min.y) & (p.y <= r.max.y)
            };
            let mut all_inside = true;
            match rects {
                [r] => {
                    for (i, p) in positions.iter().enumerate() {
                        all_inside &= inside(&extent, *p);
                        if inside(r, *p) {
                            cell_scratch.push(i as u32);
                        }
                    }
                }
                _ => {
                    for (i, p) in positions.iter().enumerate() {
                        all_inside &= inside(&extent, *p);
                        if rects.iter().fold(false, |acc, r| acc | inside(r, *p)) {
                            cell_scratch.push(i as u32);
                        }
                    }
                }
            }
            if !all_inside {
                for (i, p) in positions.iter().enumerate() {
                    assert!(
                        extent.contains(*p),
                        "sensor {i} lies outside the field extent"
                    );
                }
            }
        }
        let kept = self.cell_scratch.len();
        self.set_grid(kept);
        self.entries.resize(kept, 0);
        let (inv_w, inv_h) = (self.inv_w, self.inv_h);
        let nx = self.nx as u32;
        let (nxm1, nym1) = ((self.nx - 1) as u32, (self.ny - 1) as u32);
        let ncells = self.nx * self.ny;
        let SensorField {
            positions,
            starts,
            entries,
            cell_scratch,
            ..
        } = self;
        let cell_of = |p: Point| {
            let cx = (((p.x - extent.min.x) * inv_w) as u32).min(nxm1);
            let cy = (((p.y - extent.min.y) * inv_h) as u32).min(nym1);
            (cy * nx + cx) as usize
        };
        for &i in cell_scratch.iter() {
            starts[cell_of(positions[i as usize]) + 1] += 1;
        }
        for c in 0..ncells {
            starts[c + 1] += starts[c];
        }
        for &i in cell_scratch.iter() {
            let c = cell_of(positions[i as usize]);
            entries[starts[c] as usize] = i;
            starts[c] += 1;
        }
        for c in (1..=ncells).rev() {
            starts[c] = starts[c - 1];
        }
        starts[0] = 0;
    }
}

/// Whether `outer` contains all of `inner` (boundaries included).
fn contains_box(outer: &Aabb, inner: &Aabb) -> bool {
    outer.min.x <= inner.min.x
        && outer.min.y <= inner.min.y
        && outer.max.x >= inner.max.x
        && outer.max.y >= inner.max.y
}

/// Whether `inner` lies strictly inside `outer` (no boundary contact).
fn strictly_inside(outer: &Aabb, inner: &Aabb) -> bool {
    inner.min.x > outer.min.x
        && inner.min.y > outer.min.y
        && inner.max.x < outer.max.x
        && inner.max.y < outer.max.y
}

/// `a ∩ extent`, or `None` when the intersection is empty.
fn clip(a: &Aabb, extent: &Aabb) -> Option<Aabb> {
    let min = Point::new(a.min.x.max(extent.min.x), a.min.y.max(extent.min.y));
    let max = Point::new(a.max.x.min(extent.max.x), a.max.y.min(extent.max.y));
    (min.x <= max.x && min.y <= max.y).then_some(Aabb { min, max })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field(boundary: BoundaryPolicy) -> SensorField {
        SensorField::new(
            Aabb::from_extent(100.0, 100.0),
            vec![
                Point::new(10.0, 10.0),
                Point::new(50.0, 50.0),
                Point::new(90.0, 90.0),
                Point::new(99.0, 50.0),
            ],
            boundary,
        )
    }

    #[test]
    fn circle_query_bounded() {
        let f = small_field(BoundaryPolicy::Bounded);
        let hits = f.query_circle(Point::new(50.0, 50.0), 10.0);
        assert_eq!(hits, vec![SensorId(1)]);
        let all = f.query_circle(Point::new(50.0, 50.0), 1000.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn circle_query_boundary_inclusive() {
        let f = small_field(BoundaryPolicy::Bounded);
        let hits = f.query_circle(Point::new(10.0, 20.0), 10.0);
        assert_eq!(hits, vec![SensorId(0)]);
    }

    #[test]
    fn stadium_query_matches_brute_force() {
        let extent = Aabb::from_extent(100.0, 100.0);
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(11);
        let positions: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let f = SensorField::new(extent, positions.clone(), BoundaryPolicy::Bounded);
        for trial in 0..20 {
            let a = Point::new(rng.gen_range(-20.0..120.0), rng.gen_range(-20.0..120.0));
            let b = Point::new(
                a.x + rng.gen_range(-30.0..30.0),
                a.y + rng.gen_range(-30.0..30.0),
            );
            let st = Stadium::new(a, b, rng.gen_range(1.0..15.0));
            let mut expect: Vec<SensorId> = positions
                .iter()
                .enumerate()
                .filter(|(_, p)| st.contains(**p))
                .map(|(i, _)| SensorId(i))
                .collect();
            let mut got = f.query_stadium(&st);
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect, "trial {trial}");
        }
    }

    #[test]
    fn torus_query_wraps_borders() {
        let f = small_field(BoundaryPolicy::Torus);
        // Query centered just outside the left edge: sensor at x=99 is 2 m
        // away through the wrap (99 -> -1).
        let hits = f.query_circle(Point::new(1.0, 50.0), 3.0);
        assert_eq!(hits, vec![SensorId(3)]);
        // Bounded query does not see it.
        let fb = small_field(BoundaryPolicy::Bounded);
        assert!(fb.query_circle(Point::new(1.0, 50.0), 3.0).is_empty());
    }

    #[test]
    fn torus_query_does_not_duplicate() {
        let f = small_field(BoundaryPolicy::Torus);
        // A huge query region sees each sensor once.
        let hits = f.query_circle(Point::new(50.0, 50.0), 75.0);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn torus_matches_brute_force_images() {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(5);
        let extent = Aabb::from_extent(50.0, 50.0);
        let positions: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        let f = SensorField::new(extent, positions.clone(), BoundaryPolicy::Torus);
        for trial in 0..20 {
            let a = Point::new(rng.gen_range(-30.0..80.0), rng.gen_range(-30.0..80.0));
            let b = Point::new(
                a.x + rng.gen_range(-20.0..20.0),
                a.y + rng.gen_range(-20.0..20.0),
            );
            let st = Stadium::new(a, b, rng.gen_range(1.0..10.0));
            let mut expect: Vec<SensorId> = positions
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    (-1..=1).any(|ix| {
                        (-1..=1).any(|iy| {
                            st.contains(Point::new(
                                p.x + ix as f64 * 50.0,
                                p.y + iy as f64 * 50.0,
                            ))
                        })
                    })
                })
                .map(|(i, _)| SensorId(i))
                .collect();
            expect.sort_unstable();
            let got = f.query_stadium(&st);
            assert_eq!(got, expect, "trial {trial}");
        }
    }

    #[test]
    fn query_outside_bounded_field_is_empty() {
        let f = small_field(BoundaryPolicy::Bounded);
        assert!(f.query_circle(Point::new(500.0, 500.0), 10.0).is_empty());
    }

    #[test]
    fn empty_field() {
        let f = SensorField::new(
            Aabb::from_extent(10.0, 10.0),
            vec![],
            BoundaryPolicy::Bounded,
        );
        assert!(f.is_empty());
        assert!(f.query_circle(Point::new(5.0, 5.0), 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn sensor_outside_extent_panics() {
        SensorField::new(
            Aabb::from_extent(10.0, 10.0),
            vec![Point::new(11.0, 5.0)],
            BoundaryPolicy::Bounded,
        );
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn focused_rebuild_keeps_the_containment_panic() {
        let mut f = small_field(BoundaryPolicy::Torus);
        f.rebuild_focused(
            Aabb::from_extent(10.0, 10.0),
            BoundaryPolicy::Torus,
            |buf| {
                buf.push(Point::new(5.0, 5.0));
                buf.push(Point::new(11.0, 5.0));
                (Aabb::from_extent(10.0, 10.0), ())
            },
        );
    }

    #[test]
    fn count_matches_query_len() {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(23);
        let extent = Aabb::from_extent(60.0, 60.0);
        let positions: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..60.0)))
            .collect();
        for boundary in [BoundaryPolicy::Bounded, BoundaryPolicy::Torus] {
            let f = SensorField::new(extent, positions.clone(), boundary);
            for trial in 0..30 {
                // Mix interior, border-straddling and degenerate regions.
                let a = Point::new(rng.gen_range(-20.0..80.0), rng.gen_range(-20.0..80.0));
                let b = if trial % 5 == 0 {
                    a // degenerate: a disk
                } else {
                    Point::new(
                        a.x + rng.gen_range(-25.0..25.0),
                        a.y + rng.gen_range(-25.0..25.0),
                    )
                };
                let st = Stadium::new(a, b, rng.gen_range(0.5..20.0));
                assert_eq!(
                    f.count_in_stadium(&st),
                    f.query_stadium(&st).len(),
                    "{boundary:?} trial {trial}"
                );
            }
        }
    }

    #[test]
    fn focused_field_answers_in_focus_queries_exactly() {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(31);
        let extent = Aabb::from_extent(100.0, 100.0);
        let positions: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        for boundary in [BoundaryPolicy::Bounded, BoundaryPolicy::Torus] {
            let full = SensorField::new(extent, positions.clone(), boundary);
            let mut focused = SensorField::new(extent, Vec::new(), boundary);
            // Focus straddling the right border to exercise the translate
            // images of the filter.
            let focus = Aabb::new(Point::new(70.0, 20.0), Point::new(115.0, 70.0));
            focused.rebuild_focused(extent, boundary, |buf| {
                buf.extend_from_slice(&positions);
                (focus, ())
            });
            assert!(focused.len() == positions.len());
            assert_eq!(focused.focus(), Some(focus));
            let mut hits = Vec::new();
            for trial in 0..40 {
                let a = Point::new(rng.gen_range(72.0..108.0), rng.gen_range(22.0..62.0));
                let b = Point::new(
                    (a.x + rng.gen_range(-4.0..4.0)).clamp(71.0, 114.0),
                    (a.y + rng.gen_range(-4.0..4.0)).clamp(21.0, 69.0),
                );
                let st = Stadium::new(a, b, rng.gen_range(0.1..1.0));
                focused.query_stadium_into(&st, &mut hits);
                assert_eq!(hits, full.query_stadium(&st), "{boundary:?} trial {trial}");
                assert_eq!(focused.count_in_stadium(&st), hits.len());
            }
        }
    }

    #[test]
    fn out_of_focus_queries_fall_back_to_a_full_scan() {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(37);
        let extent = Aabb::from_extent(100.0, 100.0);
        let positions: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        for boundary in [BoundaryPolicy::Bounded, BoundaryPolicy::Torus] {
            let full = SensorField::new(extent, positions.clone(), boundary);
            let mut focused = SensorField::new(extent, positions.clone(), boundary);
            focused.refocus(Aabb::new(Point::new(10.0, 10.0), Point::new(20.0, 20.0)));
            for trial in 0..25 {
                let a = Point::new(rng.gen_range(-20.0..120.0), rng.gen_range(-20.0..120.0));
                let b = Point::new(
                    a.x + rng.gen_range(-15.0..15.0),
                    a.y + rng.gen_range(-15.0..15.0),
                );
                let st = Stadium::new(a, b, rng.gen_range(1.0..12.0));
                assert_eq!(
                    focused.query_stadium(&st),
                    full.query_stadium(&st),
                    "{boundary:?} trial {trial}"
                );
                assert_eq!(focused.count_in_stadium(&st), full.count_in_stadium(&st));
            }
        }
    }

    #[test]
    fn rebuild_reuses_a_warm_field() {
        let mut f = small_field(BoundaryPolicy::Torus);
        f.rebuild_with(
            Aabb::from_extent(50.0, 50.0),
            BoundaryPolicy::Bounded,
            |buf| {
                buf.push(Point::new(25.0, 25.0));
            },
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f.boundary(), BoundaryPolicy::Bounded);
        assert_eq!(
            f.query_circle(Point::new(25.0, 25.0), 1.0),
            vec![SensorId(0)]
        );
        // And back to a bigger focused field.
        let carry = f.rebuild_focused(
            Aabb::from_extent(100.0, 100.0),
            BoundaryPolicy::Torus,
            |buf| {
                for i in 0..50 {
                    buf.push(Point::new(1.0 + 1.9 * i as f64, 50.0));
                }
                (
                    Aabb::new(Point::new(0.0, 40.0), Point::new(30.0, 60.0)),
                    7u32,
                )
            },
        );
        assert_eq!(carry, 7);
        assert_eq!(f.len(), 50);
        let hits = f.query_circle(Point::new(10.0, 50.0), 2.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn sensors_iterate_in_id_order() {
        let f = small_field(BoundaryPolicy::Bounded);
        let ids: Vec<usize> = f.sensors().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(f.sensor(SensorId(3)).pos, Point::new(99.0, 50.0));
        assert_eq!(f.positions().len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn torus_equals_bounded_away_from_borders(
            seed in 0u64..1000,
            cx in 30.0f64..70.0,
            cy in 30.0f64..70.0,
            r in 1.0f64..10.0,
        ) {
            // A query region well inside the field sees identical results
            // under both boundary policies — including through the
            // border-aware torus fast path and a focused index.
            use rand::Rng as _;
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let extent = Aabb::from_extent(100.0, 100.0);
            let positions: Vec<Point> = (0..100)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let bounded = SensorField::new(extent, positions.clone(), BoundaryPolicy::Bounded);
            let torus = SensorField::new(extent, positions.clone(), BoundaryPolicy::Torus);
            let hits_b = bounded.query_circle(Point::new(cx, cy), r);
            let hits_t = torus.query_circle(Point::new(cx, cy), r);
            prop_assert_eq!(&hits_b, &hits_t);
            let mut focused = SensorField::new(extent, positions, BoundaryPolicy::Torus);
            let probe = Stadium::new(Point::new(cx, cy), Point::new(cx, cy), r);
            focused.refocus(probe.bounding_box());
            prop_assert_eq!(&hits_b, &focused.query_circle(Point::new(cx, cy), r));
        }

        #[test]
        fn torus_query_is_translation_invariant(
            seed in 0u64..500,
            shift_x in 0.0f64..100.0,
            shift_y in 0.0f64..100.0,
        ) {
            // Shifting all sensors and the query by the same offset
            // (mod field size) leaves a torus count unchanged.
            use rand::Rng as _;
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let extent = Aabb::from_extent(100.0, 100.0);
            let positions: Vec<Point> = (0..60)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let shifted: Vec<Point> = positions
                .iter()
                .map(|p| Point::new((p.x + shift_x) % 100.0, (p.y + shift_y) % 100.0))
                .collect();
            let base = SensorField::new(extent, positions, BoundaryPolicy::Torus);
            let moved = SensorField::new(extent, shifted, BoundaryPolicy::Torus);
            let q = Point::new(20.0, 30.0);
            let q_shift = Point::new((20.0 + shift_x) % 100.0, (30.0 + shift_y) % 100.0);
            let r = 12.5;
            prop_assert_eq!(
                base.query_circle(q, r).len(),
                moved.query_circle(q_shift, r).len()
            );
        }

        #[test]
        fn csr_query_matches_full_scan_under_both_policies(
            seed in 0u64..1000,
            ax in -30.0f64..130.0,
            ay in -30.0f64..130.0,
            dx in -40.0f64..40.0,
            dy in -40.0f64..40.0,
            r in 0.0f64..25.0,
            degenerate_sel in 0u8..2,
        ) {
            // The CSR index (row pruning, contiguous-row runs, torus fast
            // path and all) must agree with a brute-force scan over every
            // sensor for arbitrary stadia: interior, border-straddling,
            // fully outside, and degenerate (zero-length segment / zero
            // radius).
            use rand::Rng as _;
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let extent = Aabb::from_extent(100.0, 100.0);
            let positions: Vec<Point> = (0..150)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let degenerate = degenerate_sel == 1;
            let a = Point::new(ax, ay);
            let b = if degenerate { a } else { Point::new(ax + dx, ay + dy) };
            let st = Stadium::new(a, b, r);
            for boundary in [BoundaryPolicy::Bounded, BoundaryPolicy::Torus] {
                let f = SensorField::new(extent, positions.clone(), boundary);
                let expect: Vec<SensorId> = positions
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| match boundary {
                        BoundaryPolicy::Bounded => st.contains(**p),
                        BoundaryPolicy::Torus => (-1..=1).any(|ix| {
                            (-1..=1).any(|iy| {
                                st.contains(Point::new(
                                    p.x + ix as f64 * 100.0,
                                    p.y + iy as f64 * 100.0,
                                ))
                            })
                        }),
                    })
                    .map(|(i, _)| SensorId(i))
                    .collect();
                let got = f.query_stadium(&st);
                prop_assert_eq!(&got, &expect);
                prop_assert_eq!(f.count_in_stadium(&st), expect.len());
            }
        }
    }
}
