//! The indexed sensor field with range queries and boundary policies.

use crate::sensor::{Sensor, SensorId};
use gbd_geometry::point::{Aabb, Point};
use gbd_geometry::stadium::Stadium;

/// How the field treats its borders during range queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryPolicy {
    /// The field ends at its borders; a query region reaching beyond simply
    /// finds fewer sensors there (real deployments behave this way).
    Bounded,
    /// The field wraps around (a torus): queries see periodic images of the
    /// sensors. This reproduces the analytical model's implicit assumption
    /// that the target's Aggregate Region sees full sensor density
    /// everywhere.
    Torus,
}

/// A set of deployed sensors indexed by a uniform spatial hash grid.
///
/// Queries return sensors whose position lies inside a disk or stadium.
/// Under [`BoundaryPolicy::Torus`], a sensor matches if **any** of its
/// periodic images does; each sensor is reported at most once per query.
///
/// # Example
///
/// ```
/// use gbd_field::field::{BoundaryPolicy, SensorField};
/// use gbd_geometry::point::{Aabb, Point};
///
/// let extent = Aabb::from_extent(100.0, 100.0);
/// let field = SensorField::new(
///     extent,
///     vec![Point::new(5.0, 5.0), Point::new(95.0, 5.0)],
///     BoundaryPolicy::Torus,
/// );
/// // Under the torus policy, the sensor at x = 95 is only 10 m away from
/// // the one at x = 5 (wrapping the border).
/// let hits = field.query_circle(Point::new(0.0, 5.0), 6.0);
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SensorField {
    extent: Aabb,
    sensors: Vec<Sensor>,
    boundary: BoundaryPolicy,
    // Spatial hash: cells[cy * nx + cx] holds sensor indices.
    cells: Vec<Vec<u32>>,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
}

impl SensorField {
    /// Builds a field from sensor positions.
    ///
    /// # Panics
    ///
    /// Panics if the extent has zero area or a sensor lies outside it.
    pub fn new(extent: Aabb, positions: Vec<Point>, boundary: BoundaryPolicy) -> Self {
        assert!(extent.area() > 0.0, "field extent must have positive area");
        // Aim for a handful of sensors per cell; clamp grid dimensions.
        let n = positions.len().max(1);
        let target = (n as f64).sqrt().ceil() as usize;
        let nx = target.clamp(1, 256);
        let ny = target.clamp(1, 256);
        let cell_w = extent.width() / nx as f64;
        let cell_h = extent.height() / ny as f64;
        let mut cells = vec![Vec::new(); nx * ny];
        let sensors: Vec<Sensor> = positions
            .into_iter()
            .enumerate()
            .map(|(i, pos)| {
                assert!(
                    extent.contains(pos),
                    "sensor {i} lies outside the field extent"
                );
                Sensor::new(SensorId(i), pos)
            })
            .collect();
        for s in &sensors {
            let (cx, cy) = cell_of(&extent, cell_w, cell_h, nx, ny, s.pos);
            cells[cy * nx + cx].push(s.id.0 as u32);
        }
        SensorField {
            extent,
            sensors,
            boundary,
            cells,
            nx,
            ny,
            cell_w,
            cell_h,
        }
    }

    /// Field extent.
    pub fn extent(&self) -> Aabb {
        self.extent
    }

    /// Boundary policy used by queries.
    pub fn boundary(&self) -> BoundaryPolicy {
        self.boundary
    }

    /// Number of deployed sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the field has no sensors.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// All sensors, ordered by id.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// The sensor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn sensor(&self, id: SensorId) -> Sensor {
        self.sensors[id.0]
    }

    /// Sensors within distance `radius` of `center` (inclusive).
    pub fn query_circle(&self, center: Point, radius: f64) -> Vec<SensorId> {
        // A disk is a degenerate stadium.
        self.query_stadium(&Stadium::new(center, center, radius))
    }

    /// Sensors inside the stadium (the Detectable Region query used every
    /// sensing period by the simulator), sorted by id.
    pub fn query_stadium(&self, region: &Stadium) -> Vec<SensorId> {
        let mut out = Vec::new();
        match self.boundary {
            BoundaryPolicy::Bounded => {
                self.collect_in_stadium(region, &mut out);
                out.sort_unstable();
            }
            BoundaryPolicy::Torus => {
                // A sensor image s + (dx, dy) lies in `region` iff s lies in
                // the region translated by (−dx, −dy); test the 9 translates.
                let w = self.extent.width();
                let h = self.extent.height();
                let seg = region.segment();
                for ix in -1..=1i32 {
                    for iy in -1..=1i32 {
                        let off_x = -(ix as f64) * w;
                        let off_y = -(iy as f64) * h;
                        let shifted = Stadium::new(
                            Point::new(seg.a.x + off_x, seg.a.y + off_y),
                            Point::new(seg.b.x + off_x, seg.b.y + off_y),
                            region.radius(),
                        );
                        self.collect_in_stadium(&shifted, &mut out);
                    }
                }
                out.sort_unstable();
                out.dedup();
            }
        }
        out
    }

    /// Number of sensors inside the stadium (avoids the allocation when
    /// only the count is needed).
    pub fn count_in_stadium(&self, region: &Stadium) -> usize {
        self.query_stadium(region).len()
    }

    fn collect_in_stadium(&self, region: &Stadium, out: &mut Vec<SensorId>) {
        let bbox = region.bounding_box();
        // Intersect the query bbox with the field extent in cell space.
        if bbox.max.x < self.extent.min.x
            || bbox.min.x > self.extent.max.x
            || bbox.max.y < self.extent.min.y
            || bbox.min.y > self.extent.max.y
        {
            return;
        }
        let cx0 = self.clamp_cx(bbox.min.x);
        let cx1 = self.clamp_cx(bbox.max.x);
        let cy0 = self.clamp_cy(bbox.min.y);
        let cy1 = self.clamp_cy(bbox.max.y);
        let r_sq = region.radius() * region.radius();
        let seg = region.segment();
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &idx in &self.cells[cy * self.nx + cx] {
                    let s = &self.sensors[idx as usize];
                    if seg.distance_sq_to(s.pos) <= r_sq {
                        out.push(s.id);
                    }
                }
            }
        }
    }

    fn clamp_cx(&self, x: f64) -> usize {
        (((x - self.extent.min.x) / self.cell_w).floor() as i64).clamp(0, self.nx as i64 - 1)
            as usize
    }

    fn clamp_cy(&self, y: f64) -> usize {
        (((y - self.extent.min.y) / self.cell_h).floor() as i64).clamp(0, self.ny as i64 - 1)
            as usize
    }
}

fn cell_of(
    extent: &Aabb,
    cell_w: f64,
    cell_h: f64,
    nx: usize,
    ny: usize,
    p: Point,
) -> (usize, usize) {
    let cx = (((p.x - extent.min.x) / cell_w) as usize).min(nx - 1);
    let cy = (((p.y - extent.min.y) / cell_h) as usize).min(ny - 1);
    (cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field(boundary: BoundaryPolicy) -> SensorField {
        SensorField::new(
            Aabb::from_extent(100.0, 100.0),
            vec![
                Point::new(10.0, 10.0),
                Point::new(50.0, 50.0),
                Point::new(90.0, 90.0),
                Point::new(99.0, 50.0),
            ],
            boundary,
        )
    }

    #[test]
    fn circle_query_bounded() {
        let f = small_field(BoundaryPolicy::Bounded);
        let hits = f.query_circle(Point::new(50.0, 50.0), 10.0);
        assert_eq!(hits, vec![SensorId(1)]);
        let all = f.query_circle(Point::new(50.0, 50.0), 1000.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn circle_query_boundary_inclusive() {
        let f = small_field(BoundaryPolicy::Bounded);
        let hits = f.query_circle(Point::new(10.0, 20.0), 10.0);
        assert_eq!(hits, vec![SensorId(0)]);
    }

    #[test]
    fn stadium_query_matches_brute_force() {
        let extent = Aabb::from_extent(100.0, 100.0);
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(11);
        let positions: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let f = SensorField::new(extent, positions.clone(), BoundaryPolicy::Bounded);
        for trial in 0..20 {
            let a = Point::new(rng.gen_range(-20.0..120.0), rng.gen_range(-20.0..120.0));
            let b = Point::new(
                a.x + rng.gen_range(-30.0..30.0),
                a.y + rng.gen_range(-30.0..30.0),
            );
            let st = Stadium::new(a, b, rng.gen_range(1.0..15.0));
            let mut expect: Vec<SensorId> = positions
                .iter()
                .enumerate()
                .filter(|(_, p)| st.contains(**p))
                .map(|(i, _)| SensorId(i))
                .collect();
            let mut got = f.query_stadium(&st);
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect, "trial {trial}");
        }
    }

    #[test]
    fn torus_query_wraps_borders() {
        let f = small_field(BoundaryPolicy::Torus);
        // Query centered just outside the left edge: sensor at x=99 is 2 m
        // away through the wrap (99 -> -1).
        let hits = f.query_circle(Point::new(1.0, 50.0), 3.0);
        assert_eq!(hits, vec![SensorId(3)]);
        // Bounded query does not see it.
        let fb = small_field(BoundaryPolicy::Bounded);
        assert!(fb.query_circle(Point::new(1.0, 50.0), 3.0).is_empty());
    }

    #[test]
    fn torus_query_does_not_duplicate() {
        let f = small_field(BoundaryPolicy::Torus);
        // A huge query region sees each sensor once.
        let hits = f.query_circle(Point::new(50.0, 50.0), 75.0);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn torus_matches_brute_force_images() {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(5);
        let extent = Aabb::from_extent(50.0, 50.0);
        let positions: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        let f = SensorField::new(extent, positions.clone(), BoundaryPolicy::Torus);
        for trial in 0..20 {
            let a = Point::new(rng.gen_range(-30.0..80.0), rng.gen_range(-30.0..80.0));
            let b = Point::new(
                a.x + rng.gen_range(-20.0..20.0),
                a.y + rng.gen_range(-20.0..20.0),
            );
            let st = Stadium::new(a, b, rng.gen_range(1.0..10.0));
            let mut expect: Vec<SensorId> = positions
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    (-1..=1).any(|ix| {
                        (-1..=1).any(|iy| {
                            st.contains(Point::new(
                                p.x + ix as f64 * 50.0,
                                p.y + iy as f64 * 50.0,
                            ))
                        })
                    })
                })
                .map(|(i, _)| SensorId(i))
                .collect();
            expect.sort_unstable();
            let got = f.query_stadium(&st);
            assert_eq!(got, expect, "trial {trial}");
        }
    }

    #[test]
    fn query_outside_bounded_field_is_empty() {
        let f = small_field(BoundaryPolicy::Bounded);
        assert!(f.query_circle(Point::new(500.0, 500.0), 10.0).is_empty());
    }

    #[test]
    fn empty_field() {
        let f = SensorField::new(
            Aabb::from_extent(10.0, 10.0),
            vec![],
            BoundaryPolicy::Bounded,
        );
        assert!(f.is_empty());
        assert!(f.query_circle(Point::new(5.0, 5.0), 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn sensor_outside_extent_panics() {
        SensorField::new(
            Aabb::from_extent(10.0, 10.0),
            vec![Point::new(11.0, 5.0)],
            BoundaryPolicy::Bounded,
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn torus_equals_bounded_away_from_borders(
            seed in 0u64..1000,
            cx in 30.0f64..70.0,
            cy in 30.0f64..70.0,
            r in 1.0f64..10.0,
        ) {
            // A query region well inside the field sees identical results
            // under both boundary policies.
            use rand::Rng as _;
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let extent = Aabb::from_extent(100.0, 100.0);
            let positions: Vec<Point> = (0..100)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let bounded = SensorField::new(extent, positions.clone(), BoundaryPolicy::Bounded);
            let torus = SensorField::new(extent, positions, BoundaryPolicy::Torus);
            let hits_b = bounded.query_circle(Point::new(cx, cy), r);
            let hits_t = torus.query_circle(Point::new(cx, cy), r);
            prop_assert_eq!(hits_b, hits_t);
        }

        #[test]
        fn torus_query_is_translation_invariant(
            seed in 0u64..500,
            shift_x in 0.0f64..100.0,
            shift_y in 0.0f64..100.0,
        ) {
            // Shifting all sensors and the query by the same offset
            // (mod field size) leaves a torus count unchanged.
            use rand::Rng as _;
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let extent = Aabb::from_extent(100.0, 100.0);
            let positions: Vec<Point> = (0..60)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let shifted: Vec<Point> = positions
                .iter()
                .map(|p| Point::new((p.x + shift_x) % 100.0, (p.y + shift_y) % 100.0))
                .collect();
            let base = SensorField::new(extent, positions, BoundaryPolicy::Torus);
            let moved = SensorField::new(extent, shifted, BoundaryPolicy::Torus);
            let q = Point::new(20.0, 30.0);
            let q_shift = Point::new((20.0 + shift_x) % 100.0, (30.0 + shift_y) % 100.0);
            let r = 12.5;
            prop_assert_eq!(
                base.query_circle(q, r).len(),
                moved.query_circle(q_shift, r).len()
            );
        }
    }
}
