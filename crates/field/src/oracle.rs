//! The pre-CSR nested-`Vec` sensor field, retained as a correctness and
//! performance oracle.
//!
//! [`NestedGridField`] is the spatial hash the simulator shipped with
//! before the flat CSR rewrite in [`crate::field`]: one heap-allocated
//! `Vec<u32>` per grid cell, a 256×256 grid cap, and allocating queries
//! that collect each of the nine torus images separately. It answers every
//! query with exactly the ids (and order) the old field did, so:
//!
//! * the simulator's bit-identity test replays whole campaigns through it
//!   and asserts byte-equal results against the CSR path;
//! * the `perf_trajectory` sim leg and the criterion substrate pair time
//!   it against the CSR field on the same deployments, so the reported
//!   speedup is for the *same answers*.
//!
//! Do not optimize this type; its value is being the slow, obviously
//! correct reference.

use crate::sensor::{Sensor, SensorId};
use gbd_geometry::point::{Aabb, Point};
use gbd_geometry::stadium::Stadium;

pub use crate::field::BoundaryPolicy;

/// The nested-`Vec` spatial hash the CSR [`crate::field::SensorField`]
/// replaced; query-for-query identical to it.
#[derive(Debug, Clone)]
pub struct NestedGridField {
    extent: Aabb,
    sensors: Vec<Sensor>,
    boundary: BoundaryPolicy,
    // Spatial hash: cells[cy * nx + cx] holds sensor indices.
    cells: Vec<Vec<u32>>,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
}

impl NestedGridField {
    /// Builds a field from sensor positions.
    ///
    /// # Panics
    ///
    /// Panics if the extent has zero area or a sensor lies outside it.
    pub fn new(extent: Aabb, positions: Vec<Point>, boundary: BoundaryPolicy) -> Self {
        assert!(extent.area() > 0.0, "field extent must have positive area");
        // Aim for a handful of sensors per cell; clamp grid dimensions.
        let n = positions.len().max(1);
        let target = (n as f64).sqrt().ceil() as usize;
        let nx = target.clamp(1, 256);
        let ny = target.clamp(1, 256);
        let cell_w = extent.width() / nx as f64;
        let cell_h = extent.height() / ny as f64;
        let mut cells = vec![Vec::new(); nx * ny];
        let sensors: Vec<Sensor> = positions
            .into_iter()
            .enumerate()
            .map(|(i, pos)| {
                assert!(
                    extent.contains(pos),
                    "sensor {i} lies outside the field extent"
                );
                Sensor::new(SensorId(i), pos)
            })
            .collect();
        for s in &sensors {
            let cx = (((s.pos.x - extent.min.x) / cell_w) as usize).min(nx - 1);
            let cy = (((s.pos.y - extent.min.y) / cell_h) as usize).min(ny - 1);
            cells[cy * nx + cx].push(s.id.0 as u32);
        }
        NestedGridField {
            extent,
            sensors,
            boundary,
            cells,
            nx,
            ny,
            cell_w,
            cell_h,
        }
    }

    /// Field extent.
    pub fn extent(&self) -> Aabb {
        self.extent
    }

    /// Number of deployed sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether the field has no sensors.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// All sensors, ordered by id.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// The sensor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn sensor(&self, id: SensorId) -> Sensor {
        self.sensors[id.0]
    }

    /// Sensors within distance `radius` of `center` (inclusive).
    pub fn query_circle(&self, center: Point, radius: f64) -> Vec<SensorId> {
        // A disk is a degenerate stadium.
        self.query_stadium(&Stadium::new(center, center, radius))
    }

    /// Sensors inside the stadium, sorted by id.
    pub fn query_stadium(&self, region: &Stadium) -> Vec<SensorId> {
        let mut out = Vec::new();
        match self.boundary {
            BoundaryPolicy::Bounded => {
                self.collect_in_stadium(region, &mut out);
                out.sort_unstable();
            }
            BoundaryPolicy::Torus => {
                // A sensor image s + (dx, dy) lies in `region` iff s lies in
                // the region translated by (−dx, −dy); test the 9 translates.
                let w = self.extent.width();
                let h = self.extent.height();
                let seg = region.segment();
                for ix in -1..=1i32 {
                    for iy in -1..=1i32 {
                        let off_x = -(ix as f64) * w;
                        let off_y = -(iy as f64) * h;
                        let shifted = Stadium::new(
                            Point::new(seg.a.x + off_x, seg.a.y + off_y),
                            Point::new(seg.b.x + off_x, seg.b.y + off_y),
                            region.radius(),
                        );
                        self.collect_in_stadium(&shifted, &mut out);
                    }
                }
                out.sort_unstable();
                out.dedup();
            }
        }
        out
    }

    fn collect_in_stadium(&self, region: &Stadium, out: &mut Vec<SensorId>) {
        let bbox = region.bounding_box();
        // Intersect the query bbox with the field extent in cell space.
        if bbox.max.x < self.extent.min.x
            || bbox.min.x > self.extent.max.x
            || bbox.max.y < self.extent.min.y
            || bbox.min.y > self.extent.max.y
        {
            return;
        }
        let cx0 = self.clamp_cx(bbox.min.x);
        let cx1 = self.clamp_cx(bbox.max.x);
        let cy0 = self.clamp_cy(bbox.min.y);
        let cy1 = self.clamp_cy(bbox.max.y);
        let r_sq = region.radius() * region.radius();
        let seg = region.segment();
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &idx in &self.cells[cy * self.nx + cx] {
                    let s = &self.sensors[idx as usize];
                    if seg.distance_sq_to(s.pos) <= r_sq {
                        out.push(s.id);
                    }
                }
            }
        }
    }

    fn clamp_cx(&self, x: f64) -> usize {
        (((x - self.extent.min.x) / self.cell_w).floor() as i64).clamp(0, self.nx as i64 - 1)
            as usize
    }

    fn clamp_cy(&self, y: f64) -> usize {
        (((y - self.extent.min.y) / self.cell_h).floor() as i64).clamp(0, self.ny as i64 - 1)
            as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_answers_like_the_old_field() {
        let extent = Aabb::from_extent(100.0, 100.0);
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(50.0, 50.0),
            Point::new(90.0, 90.0),
            Point::new(99.0, 50.0),
        ];
        let f = NestedGridField::new(extent, positions.clone(), BoundaryPolicy::Torus);
        assert_eq!(f.len(), 4);
        assert_eq!(
            f.query_circle(Point::new(1.0, 50.0), 3.0),
            vec![SensorId(3)]
        );
        let fb = NestedGridField::new(extent, positions, BoundaryPolicy::Bounded);
        assert!(fb.query_circle(Point::new(1.0, 50.0), 3.0).is_empty());
        assert_eq!(fb.sensor(SensorId(1)).pos, Point::new(50.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn oracle_keeps_the_containment_panic() {
        NestedGridField::new(
            Aabb::from_extent(10.0, 10.0),
            vec![Point::new(11.0, 5.0)],
            BoundaryPolicy::Bounded,
        );
    }
}
