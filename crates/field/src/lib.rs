#![warn(missing_docs)]
//! Sensor-field substrate for the `sparse-groupdet` workspace.
//!
//! A sparse sensor network is a set of sensor positions in a rectangular
//! field together with the machinery the simulator needs:
//!
//! * [`sensor`] — sensor identities and positions;
//! * [`deployment`] — deployment strategies (uniform random as assumed by
//!   the paper, plus grid and jittered-grid comparators);
//! * [`field`] — [`field::SensorField`]: a CSR spatial-hash indexed sensor
//!   set with circle and stadium range queries under either a bounded or a
//!   toroidal boundary policy, rebuildable in place and focusable on a
//!   query corridor for large-N simulation;
//! * [`oracle`] — [`oracle::NestedGridField`]: the pre-CSR nested-`Vec`
//!   field, retained as the correctness and performance oracle the CSR
//!   path is benchmarked and bit-identity-tested against;
//! * [`coverage`] — coverage statistics: covered-area fraction, k-coverage,
//!   and the analytic Poisson approximation they are tested against.
//!
//! The toroidal boundary policy exists because the paper's analytical model
//! implicitly assumes the target's Aggregate Region sees the full sensor
//! density everywhere (no border truncation); wrapping the field reproduces
//! that assumption exactly, while the bounded policy quantifies the border
//! effect (an ablation experiment in `gbd-bench`).
//!
//! # Example
//!
//! ```
//! use gbd_field::deployment::{Deployer, UniformRandom};
//! use gbd_field::field::{BoundaryPolicy, SensorField};
//! use gbd_geometry::point::{Aabb, Point};
//! use rand::SeedableRng;
//!
//! let extent = Aabb::from_extent(32_000.0, 32_000.0);
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
//! let positions = UniformRandom.deploy(240, &extent, &mut rng);
//! let field = SensorField::new(extent, positions, BoundaryPolicy::Bounded);
//! let nearby = field.query_circle(Point::new(16_000.0, 16_000.0), 1_000.0);
//! assert!(nearby.len() < 240);
//! ```

pub mod coverage;
pub mod deployment;
pub mod field;
pub mod oracle;
pub mod sensor;
