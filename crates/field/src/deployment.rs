//! Deployment strategies.
//!
//! The paper assumes a uniform random deployment ("we assume that sensor
//! deployment conforms to a uniform random distribution"); the grid and
//! jittered-grid strategies are comparators used by ablation experiments to
//! show how the analytical model degrades when the uniformity assumption is
//! violated.

use gbd_geometry::point::{Aabb, Point};
use rand::Rng;

/// A strategy for placing `n` sensors inside a field extent.
pub trait Deployer {
    /// Appends `n` sensor positions inside `extent` to `out`, drawing from
    /// `rng` in exactly the order [`Deployer::deploy`] would (so a reused
    /// buffer reproduces the same deployment bit for bit).
    fn deploy_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        extent: &Aabb,
        rng: &mut R,
        out: &mut Vec<Point>,
    );

    /// Produces `n` sensor positions inside `extent`.
    fn deploy<R: Rng + ?Sized>(&self, n: usize, extent: &Aabb, rng: &mut R) -> Vec<Point> {
        let mut out = Vec::with_capacity(n);
        self.deploy_into(n, extent, rng, &mut out);
        out
    }
}

/// Independent uniform random placement — the paper's assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformRandom;

impl Deployer for UniformRandom {
    fn deploy_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        extent: &Aabb,
        rng: &mut R,
        out: &mut Vec<Point>,
    ) {
        out.reserve(n);
        for _ in 0..n {
            out.push(Point::new(
                rng.gen_range(extent.min.x..extent.max.x),
                rng.gen_range(extent.min.y..extent.max.y),
            ));
        }
    }
}

/// Near-square grid placement with optional uniform jitter.
///
/// `jitter` is the half-width of the per-axis uniform displacement as a
/// fraction of the grid pitch (`0.0` = perfect grid, `0.5` = each sensor
/// may move up to half a cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitteredGrid {
    /// Jitter half-width as a fraction of the grid pitch, in `[0, 0.5]`.
    pub jitter: f64,
}

impl JitteredGrid {
    /// A perfect grid (no jitter).
    pub fn regular() -> Self {
        JitteredGrid { jitter: 0.0 }
    }

    /// Creates a grid with the given jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 0.5]`.
    pub fn new(jitter: f64) -> Self {
        assert!((0.0..=0.5).contains(&jitter), "jitter must be in [0, 0.5]");
        JitteredGrid { jitter }
    }
}

impl Deployer for JitteredGrid {
    fn deploy_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        extent: &Aabb,
        rng: &mut R,
        out: &mut Vec<Point>,
    ) {
        if n == 0 {
            return;
        }
        // Choose rows x cols covering n with near-square cells.
        let aspect = extent.width() / extent.height();
        let rows = ((n as f64 / aspect).sqrt().ceil() as usize).max(1);
        let cols = n.div_ceil(rows);
        let dx = extent.width() / cols as f64;
        let dy = extent.height() / rows as f64;
        out.reserve(n);
        let mut placed = 0usize;
        'outer: for r in 0..rows {
            for c in 0..cols {
                if placed == n {
                    break 'outer;
                }
                placed += 1;
                let cx = extent.min.x + (c as f64 + 0.5) * dx;
                let cy = extent.min.y + (r as f64 + 0.5) * dy;
                let jx = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..self.jitter) * dx
                } else {
                    0.0
                };
                let jy = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..self.jitter) * dy
                } else {
                    0.0
                };
                out.push(Point::new(
                    (cx + jx).clamp(extent.min.x, extent.max.x),
                    (cy + jy).clamp(extent.min.y, extent.max.y),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_inside_and_counts() {
        let extent = Aabb::from_extent(100.0, 50.0);
        let pts = UniformRandom.deploy(500, &extent, &mut rng(1));
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| extent.contains(*p)));
    }

    #[test]
    fn uniform_is_reproducible() {
        let extent = Aabb::from_extent(10.0, 10.0);
        let a = UniformRandom.deploy(10, &extent, &mut rng(7));
        let b = UniformRandom.deploy(10, &extent, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_covers_quadrants_evenly() {
        let extent = Aabb::from_extent(2.0, 2.0);
        let pts = UniformRandom.deploy(8000, &extent, &mut rng(3));
        let q1 = pts.iter().filter(|p| p.x < 1.0 && p.y < 1.0).count();
        // Expect 2000 ± 5 sigma (~sqrt(8000*0.25*0.75) ≈ 39)
        assert!((q1 as f64 - 2000.0).abs() < 200.0, "q1={q1}");
    }

    #[test]
    fn grid_counts_and_containment() {
        let extent = Aabb::from_extent(100.0, 100.0);
        for n in [1usize, 2, 9, 10, 17, 100] {
            let pts = JitteredGrid::regular().deploy(n, &extent, &mut rng(4));
            assert_eq!(pts.len(), n, "n={n}");
            assert!(pts.iter().all(|p| extent.contains(*p)));
        }
    }

    #[test]
    fn regular_grid_is_deterministic() {
        let extent = Aabb::from_extent(100.0, 100.0);
        let a = JitteredGrid::regular().deploy(25, &extent, &mut rng(1));
        let b = JitteredGrid::regular().deploy(25, &extent, &mut rng(2));
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_displaces_but_contains() {
        let extent = Aabb::from_extent(100.0, 100.0);
        let grid = JitteredGrid::regular().deploy(25, &extent, &mut rng(5));
        let jit = JitteredGrid::new(0.5).deploy(25, &extent, &mut rng(5));
        assert_eq!(jit.len(), 25);
        assert!(jit.iter().all(|p| extent.contains(*p)));
        assert_ne!(grid, jit);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn jitter_out_of_range_panics() {
        JitteredGrid::new(0.9);
    }

    #[test]
    fn deploy_into_matches_deploy_bit_for_bit() {
        let extent = Aabb::from_extent(100.0, 80.0);
        let owned = UniformRandom.deploy(64, &extent, &mut rng(9));
        let mut buf = vec![Point::new(-1.0, -1.0)];
        buf.clear();
        UniformRandom.deploy_into(64, &extent, &mut rng(9), &mut buf);
        assert_eq!(owned, buf);

        let owned = JitteredGrid::new(0.4).deploy(37, &extent, &mut rng(9));
        buf.clear();
        JitteredGrid::new(0.4).deploy_into(37, &extent, &mut rng(9), &mut buf);
        assert_eq!(owned, buf);
    }

    #[test]
    fn zero_sensors_is_empty() {
        let extent = Aabb::from_extent(1.0, 1.0);
        assert!(UniformRandom.deploy(0, &extent, &mut rng(0)).is_empty());
        assert!(JitteredGrid::regular()
            .deploy(0, &extent, &mut rng(0))
            .is_empty());
    }
}
