//! Sensor identities and positions.

use gbd_geometry::point::Point;

/// Stable identifier of a sensor within one deployment (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SensorId(pub usize);

impl std::fmt::Display for SensorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sensor#{}", self.0)
    }
}

/// A deployed sensor: an identifier and a position.
///
/// All sensors share the same sensing range in this model (a paper
/// assumption), so the range lives on the query, not the sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensor {
    /// Identifier (index into the deployment).
    pub id: SensorId,
    /// Position in field coordinates.
    pub pos: Point,
}

impl Sensor {
    /// Creates a sensor.
    pub const fn new(id: SensorId, pos: Point) -> Self {
        Sensor { id, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(SensorId(7).to_string(), "sensor#7");
        assert!(SensorId(1) < SensorId(2));
    }

    #[test]
    fn sensor_holds_position() {
        let s = Sensor::new(SensorId(0), Point::new(1.0, 2.0));
        assert_eq!(s.pos, Point::new(1.0, 2.0));
    }
}
