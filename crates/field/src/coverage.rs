//! Coverage statistics of a deployment.
//!
//! A *sparse* sensor network is one whose sensing disks only partially
//! cover the field, leaving void areas. These statistics quantify that:
//! the paper's default deployment (60–240 sensors with `Rs` = 1 km in a
//! 32 km × 32 km field) covers between ~17 % and ~52 % of the field, so a
//! large void fraction remains at every density the paper evaluates.

use crate::field::SensorField;
use gbd_geometry::montecarlo::sample_point;
use rand::Rng;

/// Coverage statistics estimated by Monte Carlo point sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageStats {
    /// Fraction of the field covered by at least one sensing disk.
    pub covered_fraction: f64,
    /// `k_coverage[k]`: fraction of the field covered by exactly `k`
    /// sensing disks (index 0 = void area fraction). The last bin
    /// aggregates "k or more".
    pub k_coverage: Vec<f64>,
    /// Number of sample points used.
    pub samples: u64,
}

impl CoverageStats {
    /// Fraction of the field with no sensing coverage (the void area the
    /// paper's introduction motivates).
    pub fn void_fraction(&self) -> f64 {
        self.k_coverage[0]
    }
}

/// Estimates coverage of the field by disks of radius `rs` centered on the
/// sensors, honoring the field's boundary policy.
///
/// `max_k` bounds the k-coverage histogram (the last bin saturates).
///
/// # Panics
///
/// Panics if `samples == 0` or `max_k == 0`.
pub fn estimate_coverage<R: Rng + ?Sized>(
    field: &SensorField,
    rs: f64,
    samples: u64,
    max_k: usize,
    rng: &mut R,
) -> CoverageStats {
    assert!(samples > 0, "need at least one sample");
    assert!(max_k > 0, "need at least one k-coverage bin");
    let extent = field.extent();
    let mut k_counts = vec![0u64; max_k + 1];
    for _ in 0..samples {
        let p = sample_point(&extent, rng);
        let k = field.query_circle(p, rs).len().min(max_k);
        k_counts[k] += 1;
    }
    let k_coverage: Vec<f64> = k_counts
        .iter()
        .map(|&c| c as f64 / samples as f64)
        .collect();
    CoverageStats {
        covered_fraction: 1.0 - k_coverage[0],
        k_coverage,
        samples,
    }
}

/// The Boolean-model (Poisson) approximation of the covered fraction for a
/// uniform deployment of `n` sensors: `1 − (1 − π rs² / S)^n ≈ 1 − e^{−λ π rs²}`.
///
/// Exact for a toroidal field in expectation; slightly optimistic near the
/// borders of a bounded field. Used as the analytic reference in tests.
pub fn expected_covered_fraction(n: usize, rs: f64, field_area: f64) -> f64 {
    assert!(field_area > 0.0, "field area must be positive");
    let disk = std::f64::consts::PI * rs * rs;
    1.0 - (1.0 - (disk / field_area).min(1.0)).powi(n as i32)
}

/// Classification of a deployment's sparseness.
///
/// The paper defines a sparse network as one where sensing coverage is
/// partial but multi-hop communication coverage is available; as a
/// practical proxy we call a deployment *sparse* when less than the given
/// fraction of the field is covered.
pub fn is_sparse(n: usize, rs: f64, field_area: f64, threshold: f64) -> bool {
    expected_covered_fraction(n, rs, field_area) < threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployer, UniformRandom};
    use crate::field::BoundaryPolicy;
    use gbd_geometry::point::Aabb;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn paper_deployment_is_sparse() {
        let s = 32_000.0 * 32_000.0;
        // 240 sensors, 1 km range: ~52% union coverage — void areas remain.
        let f240 = expected_covered_fraction(240, 1000.0, s);
        assert!(f240 > 0.45 && f240 < 0.60, "f240={f240}");
        // 60 sensors: ~17%.
        let f60 = expected_covered_fraction(60, 1000.0, s);
        assert!(f60 > 0.12 && f60 < 0.22, "f60={f60}");
        assert!(is_sparse(240, 1000.0, s, 0.90));
        assert!(!is_sparse(24_000, 1000.0, s, 0.90));
    }

    #[test]
    fn montecarlo_matches_poisson_prediction_on_torus() {
        let extent = Aabb::from_extent(1000.0, 1000.0);
        let mut r = rng(42);
        let positions = UniformRandom.deploy(120, &extent, &mut r);
        let field = SensorField::new(extent, positions, BoundaryPolicy::Torus);
        let rs = 40.0;
        let stats = estimate_coverage(&field, rs, 40_000, 5, &mut r);
        let expect = expected_covered_fraction(120, rs, extent.area());
        // Single deployment: expect agreement within a few percentage points.
        assert!(
            (stats.covered_fraction - expect).abs() < 0.05,
            "mc={} analytic={expect}",
            stats.covered_fraction
        );
    }

    #[test]
    fn k_coverage_sums_to_one_and_matches_fraction() {
        let extent = Aabb::from_extent(500.0, 500.0);
        let mut r = rng(3);
        let positions = UniformRandom.deploy(60, &extent, &mut r);
        let field = SensorField::new(extent, positions, BoundaryPolicy::Bounded);
        let stats = estimate_coverage(&field, 50.0, 20_000, 4, &mut r);
        let total: f64 = stats.k_coverage.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((stats.void_fraction() + stats.covered_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_deployment_has_zero_coverage() {
        let extent = Aabb::from_extent(100.0, 100.0);
        let field = SensorField::new(extent, vec![], BoundaryPolicy::Bounded);
        let stats = estimate_coverage(&field, 10.0, 1000, 3, &mut rng(0));
        assert_eq!(stats.covered_fraction, 0.0);
        assert_eq!(stats.void_fraction(), 1.0);
    }

    #[test]
    fn covered_fraction_monotone_in_n() {
        let s = 1_000_000.0;
        let mut prev = 0.0;
        for n in [0usize, 10, 50, 200] {
            let f = expected_covered_fraction(n, 30.0, s);
            assert!(f >= prev);
            prev = f;
        }
    }
}
