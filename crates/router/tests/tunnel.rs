//! Streaming sessions through the router: a `stream_open` pins its slot
//! and the connection tunnels to the shard for the session's lifetime.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gbd_router::{Router, RouterConfig};
use gbd_serve::{Json, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn {
            writer: stream,
            reader,
        }
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("newline");
        self.recv()
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "connection closed unexpectedly");
        Json::parse(line.trim()).expect("JSON response")
    }
}

#[test]
fn stream_session_tunnels_through_the_router() {
    let shard = Server::bind(ServeConfig::default(), Arc::new(gbd_engine::Engine::new()))
        .expect("bind shard");
    let shard_addr = shard.local_addr().to_string();
    let shard_handle = shard.handle();
    let shard_thread = std::thread::spawn(move || shard.run());

    let router = Router::bind(RouterConfig {
        shards: vec![shard_addr],
        ..RouterConfig::default()
    })
    .expect("bind router");
    let router_addr = router.local_addr().to_string();
    let router_handle = router.handle();
    let router_thread = std::thread::spawn(move || router.run());

    let mut conn = Conn::connect(&router_addr);

    // report/stream_close with no session are answered by the router.
    let err = conn.round_trip(r#"{"id":1,"verb":"stream_close"}"#);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // Open a session: everything after this tunnels to the shard.
    let ack = conn.round_trip(
        r#"{"id":2,"verb":"stream_open","params":{"k":3,"m":10},"boundary":"torus"}"#,
    );
    assert_eq!(ack.get("streaming").and_then(Json::as_bool), Some(true));

    // A stationary intruder sighted by the same sensor for k = 3
    // consecutive periods is one velocity-feasible chain: the third
    // report must push a detection event back down the tunnel.
    for period in 1u64..=3 {
        let line = format!(
            r#"{{"id":{},"verb":"report","reports":[{{"sensor":1,"period":{period},"x":500.0,"y":500.0}}]}}"#,
            10 + period,
        );
        let ack = conn.round_trip(&line);
        assert_eq!(ack.get("ingested").and_then(Json::as_u64), Some(1));
        let events = ack.get("events").and_then(Json::as_u64).expect("events");
        if period < 3 {
            assert_eq!(events, 0, "period {period}");
        } else {
            assert_eq!(events, 1, "period {period}");
            let event = conn.recv();
            let body = event.get("event").expect("event body");
            assert_eq!(body.get("period").and_then(Json::as_u64), Some(3));
            assert_eq!(body.get("chain_len").and_then(Json::as_u64), Some(3));
        }
    }

    let end = conn.round_trip(r#"{"id":20,"verb":"stream_close"}"#);
    assert_eq!(end.get("stream_end").and_then(Json::as_bool), Some(true));
    assert_eq!(end.get("reports").and_then(Json::as_u64), Some(3));
    assert_eq!(end.get("events").and_then(Json::as_u64), Some(1));

    router_handle.shutdown();
    router_thread
        .join()
        .expect("router thread")
        .expect("router run");
    shard_handle.shutdown();
    shard_thread
        .join()
        .expect("shard thread")
        .expect("shard run");
}
