//! Per-slot serving state: the active address, circuit breaker, health
//! bookkeeping, and failover.
//!
//! A slot is a *logical* owner of a share of the hash ring. It starts
//! pinned to its primary shard; when the primary is declared dead (by
//! request failures tripping the breaker or by missed heartbeats) and a
//! standby is configured, the slot promotes the standby — the ring never
//! changes, only the address behind the slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Mutable state behind one slot's mutex.
#[derive(Debug)]
struct SlotState {
    /// Address currently serving this slot's keys.
    active: String,
    /// The standby was promoted; there is nothing left to fail over to.
    failed_over: bool,
    /// Consecutive request-transport failures against `active`.
    consecutive_failures: u32,
    /// While set (and in the future), requests skip `active` entirely.
    breaker_open_until: Option<Instant>,
    /// Consecutive heartbeat misses against `active`.
    heartbeat_misses: u32,
    /// Last heartbeat verdict.
    healthy: bool,
    /// Last `shipped_records` observed from the primary's cluster metrics.
    shipped_records: u64,
    /// Last `applied_records` observed from the standby's cluster metrics.
    applied_records: u64,
}

/// What a request path should do about a slot right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Forward to this address.
    Forward(String),
    /// Breaker open and no standby left: shed with `shard_unavailable`.
    Shed,
}

/// A point-in-time copy of one slot's state for the metrics payload.
#[derive(Debug, Clone)]
pub struct SlotSnapshot {
    /// Configured primary address.
    pub primary: String,
    /// Configured standby address, if any.
    pub standby: Option<String>,
    /// Address currently serving the slot.
    pub active: String,
    /// Whether the standby has been promoted.
    pub failed_over: bool,
    /// Last heartbeat verdict.
    pub healthy: bool,
    /// Whether the circuit breaker is currently open.
    pub breaker_open: bool,
    /// Consecutive heartbeat misses.
    pub heartbeat_misses: u32,
    /// Last observed primary `shipped_records`.
    pub shipped_records: u64,
    /// Last observed standby `applied_records`.
    pub applied_records: u64,
}

/// One hash slot: a primary, an optional standby, and the live state.
#[derive(Debug)]
pub struct Slot {
    primary: String,
    standby: Option<String>,
    state: Mutex<SlotState>,
}

fn lock(state: &Mutex<SlotState>) -> std::sync::MutexGuard<'_, SlotState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Slot {
    /// A healthy slot pinned to `primary`.
    pub fn new(primary: String, standby: Option<String>) -> Slot {
        let active = primary.clone();
        Slot {
            primary,
            standby,
            state: Mutex::new(SlotState {
                active,
                failed_over: false,
                consecutive_failures: 0,
                breaker_open_until: None,
                heartbeat_misses: 0,
                healthy: true,
                shipped_records: 0,
                applied_records: 0,
            }),
        }
    }

    /// Where a request for this slot should go right now. An expired
    /// breaker half-opens: the next request probes the active address and
    /// either closes the breaker (success) or re-opens it (failure).
    pub fn route(&self, now: Instant) -> Route {
        let mut state = lock(&self.state);
        if let Some(until) = state.breaker_open_until {
            if now < until {
                return Route::Shed;
            }
            // Half-open: let one request through as the probe.
            state.breaker_open_until = None;
        }
        Route::Forward(state.active.clone())
    }

    /// Records a successful round trip against `addr`: closes the breaker
    /// and clears the failure streak (if `addr` is still the active one —
    /// a success against a since-demoted address proves nothing).
    pub fn record_success(&self, addr: &str) {
        let mut state = lock(&self.state);
        if state.active == addr {
            state.consecutive_failures = 0;
            state.breaker_open_until = None;
            state.healthy = true;
        }
    }

    /// Records a transport failure against `addr`. Opens the breaker once
    /// the streak reaches `threshold`. Returns `true` when the caller
    /// should attempt a failover (the failing address is the active one
    /// and a standby is still available).
    pub fn record_failure(&self, addr: &str, threshold: u32, cooldown: Duration) -> bool {
        let mut state = lock(&self.state);
        if state.active != addr {
            return false;
        }
        state.consecutive_failures += 1;
        if state.consecutive_failures >= threshold {
            state.breaker_open_until = Some(Instant::now() + cooldown);
        }
        !state.failed_over && self.standby.is_some()
    }

    /// Promotes the standby: the slot's keys re-pin to it, the breaker
    /// closes, and the failure streak resets. Returns `false` when there
    /// is no standby or it was already promoted (the slot is on its last
    /// address either way).
    pub fn promote_standby(&self) -> bool {
        let Some(standby) = &self.standby else {
            return false;
        };
        let mut state = lock(&self.state);
        if state.failed_over {
            return false;
        }
        state.active = standby.clone();
        state.failed_over = true;
        state.consecutive_failures = 0;
        state.breaker_open_until = None;
        state.heartbeat_misses = 0;
        state.healthy = true;
        true
    }

    /// Records a heartbeat verdict for `addr`. Returns `true` when the
    /// miss streak against the active address crossed `max_misses` and a
    /// failover should be attempted.
    pub fn record_heartbeat(&self, addr: &str, alive: bool, max_misses: u32) -> bool {
        let mut state = lock(&self.state);
        if state.active != addr {
            return false;
        }
        if alive {
            state.heartbeat_misses = 0;
            state.healthy = true;
            return false;
        }
        state.heartbeat_misses += 1;
        if state.heartbeat_misses >= max_misses {
            state.healthy = false;
            return !state.failed_over && self.standby.is_some();
        }
        false
    }

    /// Stores the replication figures the heartbeat scraped.
    pub fn record_replication(&self, shipped: Option<u64>, applied: Option<u64>) {
        let mut state = lock(&self.state);
        if let Some(shipped) = shipped {
            state.shipped_records = shipped;
        }
        if let Some(applied) = applied {
            state.applied_records = applied;
        }
    }

    /// The configured primary address.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// The configured standby address.
    pub fn standby(&self) -> Option<&str> {
        self.standby.as_deref()
    }

    /// The address currently serving the slot.
    pub fn active(&self) -> String {
        lock(&self.state).active.clone()
    }

    /// A point-in-time copy for the metrics payload.
    pub fn snapshot(&self, now: Instant) -> SlotSnapshot {
        let state = lock(&self.state);
        SlotSnapshot {
            primary: self.primary.clone(),
            standby: self.standby.clone(),
            active: state.active.clone(),
            failed_over: state.failed_over,
            healthy: state.healthy,
            breaker_open: state.breaker_open_until.is_some_and(|until| now < until),
            heartbeat_misses: state.heartbeat_misses,
            shipped_records: state.shipped_records,
            applied_records: state.applied_records,
        }
    }
}

/// Router-wide counters surfaced in the metrics payload.
#[derive(Debug, Default)]
pub struct RouterCounters {
    /// Eval requests forwarded to a shard (first attempts and retries).
    pub forwarded: AtomicU64,
    /// Retry attempts after a transport failure.
    pub retries: AtomicU64,
    /// Standby promotions.
    pub failovers: AtomicU64,
    /// Requests shed with `shard_unavailable`.
    pub shed: AtomicU64,
}

impl RouterCounters {
    /// Relaxed increment (counters are monotonic and independently read).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let slot = Slot::new("a".to_string(), None);
        let cooldown = Duration::from_millis(20);
        for _ in 0..2 {
            slot.record_failure("a", 3, cooldown);
        }
        assert_eq!(slot.route(Instant::now()), Route::Forward("a".to_string()));
        slot.record_failure("a", 3, cooldown);
        assert_eq!(slot.route(Instant::now()), Route::Shed);
        std::thread::sleep(cooldown + Duration::from_millis(5));
        // Half-open probe goes through; its failure re-opens immediately.
        assert_eq!(slot.route(Instant::now()), Route::Forward("a".to_string()));
        slot.record_failure("a", 1, cooldown);
        assert_eq!(slot.route(Instant::now()), Route::Shed);
        // And a success closes it for good.
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert_eq!(slot.route(Instant::now()), Route::Forward("a".to_string()));
        slot.record_success("a");
        assert_eq!(slot.route(Instant::now()), Route::Forward("a".to_string()));
    }

    #[test]
    fn failover_promotes_once_and_repins_the_slot() {
        let slot = Slot::new("a".to_string(), Some("b".to_string()));
        assert!(slot.record_failure("a", 5, Duration::from_secs(1)));
        assert!(slot.promote_standby());
        assert_eq!(slot.active(), "b");
        assert!(slot.snapshot(Instant::now()).failed_over);
        // Second promotion is a no-op; failures against b find no standby.
        assert!(!slot.promote_standby());
        assert!(!slot.record_failure("b", 5, Duration::from_secs(1)));
        // Stale failures against the demoted primary are ignored.
        assert!(!slot.record_failure("a", 1, Duration::from_secs(1)));
        assert_eq!(slot.route(Instant::now()), Route::Forward("b".to_string()));
    }

    #[test]
    fn heartbeat_misses_trigger_failover_only_past_threshold() {
        let slot = Slot::new("a".to_string(), Some("b".to_string()));
        assert!(!slot.record_heartbeat("a", false, 3));
        assert!(!slot.record_heartbeat("a", false, 3));
        assert!(!slot.record_heartbeat("a", true, 3));
        assert!(!slot.record_heartbeat("a", false, 3));
        assert!(!slot.record_heartbeat("a", false, 3));
        assert!(slot.record_heartbeat("a", false, 3));
        assert!(!slot.snapshot(Instant::now()).healthy);
    }
}
