//! The router process: accept loop, per-connection forwarding with
//! retries and failover, the heartbeat thread, and the router's own
//! `metrics` payload.

use crate::ring::Ring;
use crate::slots::{Route, RouterCounters, Slot};
use crate::upstream::{probe, UpstreamPool};
use gbd_engine::{BackendSpec, Engine, EvalRequest};
use gbd_serve::protocol::{self, ErrorCode, Verb};
use gbd_serve::{Json, METRICS_SCHEMA_VERSION};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything configurable about a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind for clients (`:0` picks an ephemeral port,
    /// reported by [`Router::local_addr`]).
    pub addr: String,
    /// Shard serving addresses; slot `i` is pinned to `shards[i]`.
    pub shards: Vec<String>,
    /// `(slot, addr)` standby serving addresses; the slot re-pins to the
    /// standby when its primary is declared dead.
    pub standbys: Vec<(usize, String)>,
    /// Hash-ring points per slot (more points → smoother key share).
    pub virtual_nodes: usize,
    /// Transport retries per request after the first attempt.
    pub retries: u32,
    /// First retry backoff; doubles per attempt, with jitter.
    pub backoff_base: Duration,
    /// Consecutive transport failures that open a slot's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds before half-opening.
    pub breaker_cooldown: Duration,
    /// Heartbeat cadence.
    pub heartbeat_interval: Duration,
    /// Consecutive heartbeat misses that declare the active address dead.
    pub heartbeat_misses: u32,
    /// Bound on every upstream socket operation in the request path.
    pub upstream_timeout: Duration,
    /// Bound on heartbeat probe sockets (kept short so one slow shard
    /// cannot stall the sweep).
    pub probe_timeout: Duration,
    /// Longest accepted client request line in bytes.
    pub max_line_bytes: usize,
    /// Watch for SIGINT/SIGTERM and shut down gracefully when one
    /// arrives.
    pub handle_signals: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            standbys: Vec::new(),
            virtual_nodes: 64,
            retries: 3,
            backoff_base: Duration::from_millis(10),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_misses: 3,
            upstream_timeout: Duration::from_secs(10),
            probe_timeout: Duration::from_secs(1),
            max_line_bytes: 1 << 20,
            handle_signals: false,
        }
    }
}

/// State shared by the accept loop, connections, and the heartbeat.
pub(crate) struct RouterShared {
    ring: Ring,
    slots: Vec<Slot>,
    counters: RouterCounters,
    config: RouterConfig,
    shutdown: AtomicBool,
}

impl RouterShared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A handle for stopping a running router from another thread.
#[derive(Clone)]
pub struct RouterHandle {
    shared: Arc<RouterShared>,
}

impl RouterHandle {
    /// Triggers the same graceful shutdown as the `shutdown` verb.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// A bound router, ready to [`run`](Router::run).
pub struct Router {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
    heartbeat: Mutex<Option<JoinHandle<()>>>,
    heartbeat_stop: Arc<AtomicBool>,
}

impl Router {
    /// Binds the listener, builds the ring, and starts the heartbeat.
    ///
    /// # Errors
    ///
    /// Bind failures propagate; an empty shard list or a standby naming a
    /// slot that does not exist is `InvalidInput`.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        for (slot, addr) in &config.standbys {
            if *slot >= config.shards.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "standby {addr} names slot {slot}, but there are only {} shards",
                        config.shards.len()
                    ),
                ));
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        if config.handle_signals {
            gbd_serve::signals::install();
        }
        let ring = Ring::new(config.shards.len(), config.virtual_nodes.max(1));
        let slots = config
            .shards
            .iter()
            .enumerate()
            .map(|(i, primary)| {
                let standby = config
                    .standbys
                    .iter()
                    .find(|(slot, _)| *slot == i)
                    .map(|(_, addr)| addr.clone());
                Slot::new(primary.clone(), standby)
            })
            .collect();
        let shared = Arc::new(RouterShared {
            ring,
            slots,
            counters: RouterCounters::default(),
            config,
            shutdown: AtomicBool::new(false),
        });
        let heartbeat_stop = Arc::new(AtomicBool::new(false));
        let hb_shared = Arc::clone(&shared);
        let hb_stop = Arc::clone(&heartbeat_stop);
        let heartbeat = std::thread::Builder::new()
            .name("gbd-router-heartbeat".to_string())
            .spawn(move || heartbeat_loop(&hb_shared, &hb_stop))?;
        Ok(Router {
            listener,
            local_addr,
            shared,
            conns: Mutex::new(Vec::new()),
            heartbeat: Mutex::new(Some(heartbeat)),
            heartbeat_stop,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle for shutting the router down from elsewhere.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves client connections until shutdown, then drains.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures; `WouldBlock` and
    /// per-connection errors are handled internally.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.shared.shutting_down()
                || (self.shared.config.handle_signals && gbd_serve::signals::triggered())
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.spawn_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.reap_finished();
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionAborted
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    self.drain();
                    return Err(e);
                }
            }
        }
        self.drain();
        Ok(())
    }

    fn spawn_conn(&self, stream: TcpStream) {
        // Relayed responses and tunneled stream events are small
        // single-line writes; Nagle would park each behind the client's
        // delayed ACK.
        let _ = stream.set_nodelay(true);
        let Ok(track) = stream.try_clone() else {
            return;
        };
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name("gbd-router-conn".to_string())
            .spawn(move || handle_conn(stream, &shared));
        match spawned {
            Ok(handle) => self
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push((track, handle)),
            Err(_) => {
                let _ = track.shutdown(Shutdown::Both);
            }
        }
    }

    fn reap_finished(&self) {
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut live = Vec::with_capacity(conns.len());
        for (stream, handle) in conns.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push((stream, handle));
            }
        }
        *conns = live;
    }

    fn drain(&self) {
        self.heartbeat_stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self
            .heartbeat
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
        {
            let _ = handle.join();
        }
        let mut conns = self
            .conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (stream, _) in conns.iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (_, handle) in conns.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One client connection: parse each line just enough to route it, then
/// relay the shard's response bytes verbatim (bit-identical answers are
/// a protocol guarantee, so the router must never re-render a shard
/// response).
fn handle_conn(stream: TcpStream, shared: &Arc<RouterShared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut pool = UpstreamPool::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let routed = if line.len() > shared.config.max_line_bytes {
            Routed::Reply(
                protocol::error_response(
                    None,
                    ErrorCode::LineTooLong,
                    &format!(
                        "request line exceeds {} bytes",
                        shared.config.max_line_bytes
                    ),
                )
                .render(),
            )
        } else {
            dispatch(line.trim_end_matches(['\n', '\r']), shared, &mut pool)
        };
        match routed {
            Routed::Reply(response) => {
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
            }
            Routed::OpenStream { id, slot } => {
                // The connection becomes a session tunnel for the rest of
                // its life; `tunnel_stream` consumes both halves.
                tunnel_stream(
                    id,
                    slot,
                    line.trim_end_matches(['\n', '\r']),
                    reader,
                    writer,
                    shared,
                );
                return;
            }
        }
        if shared.shutting_down() {
            return;
        }
    }
}

/// What `dispatch` decided to do with a request line.
enum Routed {
    /// A rendered response line to write back.
    Reply(String),
    /// A `stream_open`: pin `slot` and tunnel the connection to it.
    OpenStream { id: u64, slot: usize },
}

/// Routes one request line to its response line.
fn dispatch(line: &str, shared: &Arc<RouterShared>, pool: &mut UpstreamPool) -> Routed {
    let envelope = match protocol::parse_line(line) {
        Ok(envelope) => envelope,
        Err(e) => {
            return Routed::Reply(protocol::error_response(e.id, e.code, &e.message).render())
        }
    };
    let id = envelope.id;
    Routed::Reply(match envelope.verb {
        Verb::Ping => protocol::pong(id).render(),
        Verb::Shutdown => {
            let ack = Json::obj(vec![
                ("id".to_string(), Json::Int(id as i64)),
                ("ok".to_string(), Json::Bool(true)),
                ("shutting_down".to_string(), Json::Bool(true)),
            ]);
            shared.begin_shutdown();
            ack.render()
        }
        Verb::Metrics { .. } => render_router_metrics(id, shared).render(),
        Verb::Eval(request) => forward(id, line, &request, shared, pool),
        Verb::StreamOpen(spec) => {
            // Sessions are stateful, so the slot is pinned by the same
            // routing key evals use for these params: the session lands
            // where that operating point's caches are warm, and every
            // report for it follows the open down one tunnel.
            let request = EvalRequest::new(spec.params, BackendSpec::ms_default());
            let slot = shared.ring.slot_for(&Engine::routing_key(&request));
            return Routed::OpenStream { id, slot };
        }
        Verb::Report { .. } | Verb::StreamClose => protocol::error_response(
            Some(id),
            ErrorCode::BadRequest,
            "no stream session is open on this connection; send stream_open first",
        )
        .render(),
        Verb::Watch { .. } | Verb::Unwatch | Verb::Stats | Verb::Store => {
            protocol::error_response(
                Some(id),
                ErrorCode::BadRequest,
                "verb not supported by the router; connect to a shard directly",
            )
            .render()
        }
    })
}

/// Connects the upstream leg of a session tunnel. The connect itself is
/// bounded, but the socket then carries a long-lived session that may
/// idle between reports, so it gets no read timeout — teardown comes
/// from either side closing, not from a clock.
fn connect_tunnel(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Turns the client connection into a transparent byte tunnel to the
/// pinned slot: the raw `stream_open` line is forwarded, then both
/// directions are relayed verbatim until either side closes. Failover
/// and retries apply only to establishing the tunnel — the detector
/// state lives on the shard, so a mid-session transport failure ends the
/// session (the shard's abort accounting covers it) instead of silently
/// re-routing to a shard with empty state.
fn tunnel_stream(
    id: u64,
    slot_index: usize,
    open_line: &str,
    mut reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    shared: &Arc<RouterShared>,
) {
    let Ok(client) = writer.into_inner() else {
        return;
    };
    let slot = &shared.slots[slot_index];
    let config = &shared.config;
    let attempts = config.retries.saturating_add(1);
    let mut upstream = None;
    for _ in 0..attempts {
        let addr = match slot.route(Instant::now()) {
            Route::Forward(addr) => addr,
            Route::Shed => {
                if slot.promote_standby() {
                    RouterCounters::bump(&shared.counters.failovers);
                    slot.active()
                } else {
                    break;
                }
            }
        };
        RouterCounters::bump(&shared.counters.forwarded);
        match connect_tunnel(&addr, config.upstream_timeout) {
            Ok(mut stream) => {
                if stream.write_all(open_line.as_bytes()).is_err()
                    || stream.write_all(b"\n").is_err()
                {
                    // Nothing session-stateful happened upstream yet (the
                    // open line never arrived), so retrying is safe.
                    let failed = slot.record_failure(
                        &addr,
                        config.breaker_threshold,
                        config.breaker_cooldown,
                    );
                    if failed && slot.promote_standby() {
                        RouterCounters::bump(&shared.counters.failovers);
                    }
                    continue;
                }
                slot.record_success(&addr);
                upstream = Some(stream);
                break;
            }
            Err(_) => {
                let failed = slot.record_failure(
                    &addr,
                    config.breaker_threshold,
                    config.breaker_cooldown,
                );
                if failed && slot.promote_standby() {
                    RouterCounters::bump(&shared.counters.failovers);
                }
            }
        }
    }
    let Some(mut shard) = upstream else {
        RouterCounters::bump(&shared.counters.shed);
        let err = protocol::error_response(
            Some(id),
            ErrorCode::ShardUnavailable,
            &format!("slot {slot_index} has no reachable shard; safe to retry"),
        );
        let mut client = client;
        let _ = client.write_all(err.render().as_bytes());
        let _ = client.write_all(b"\n");
        return;
    };
    // Shard → client relays on a helper thread; this thread relays
    // client → shard, starting with any lines the client already
    // pipelined into the BufReader. Shutting both sockets down when
    // either direction ends unblocks the other copy.
    let Ok(shard_read) = shard.try_clone() else {
        let _ = shard.shutdown(Shutdown::Both);
        return;
    };
    let Ok(client_write) = client.try_clone() else {
        let _ = shard.shutdown(Shutdown::Both);
        return;
    };
    let downstream = std::thread::Builder::new()
        .name("gbd-router-tunnel".to_string())
        .spawn(move || {
            let mut from = shard_read;
            let mut to = client_write;
            let _ = io::copy(&mut from, &mut to);
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        });
    let _ = io::copy(&mut reader, &mut shard);
    let _ = shard.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
    if let Ok(handle) = downstream {
        let _ = handle.join();
    }
}

/// Forwards an eval line to the slot owning its routing key, with
/// bounded jittered retries, breaker checks, and standby failover. The
/// raw request line is forwarded verbatim, and the shard's response line
/// is returned verbatim.
fn forward(
    id: u64,
    line: &str,
    request: &gbd_engine::EvalRequest,
    shared: &Arc<RouterShared>,
    pool: &mut UpstreamPool,
) -> String {
    let slot_index = shared.ring.slot_for(&Engine::routing_key(request));
    let slot = &shared.slots[slot_index];
    let config = &shared.config;
    let mut rng = Xorshift::new(id ^ ((slot_index as u64) << 32) | 1);
    let attempts = config.retries.saturating_add(1);
    for attempt in 0..attempts {
        let addr = match slot.route(Instant::now()) {
            Route::Forward(addr) => addr,
            Route::Shed => {
                // The breaker is open. If a standby is still waiting, this
                // is the moment it earns its keep; otherwise shed.
                if slot.promote_standby() {
                    RouterCounters::bump(&shared.counters.failovers);
                    slot.active()
                } else {
                    break;
                }
            }
        };
        RouterCounters::bump(&shared.counters.forwarded);
        match pool.round_trip(&addr, line, config.upstream_timeout) {
            Ok(response) => {
                slot.record_success(&addr);
                return response;
            }
            Err(_) => {
                let trip_breaker = slot.record_failure(
                    &addr,
                    config.breaker_threshold,
                    config.breaker_cooldown,
                );
                if trip_breaker && slot.promote_standby() {
                    // Retry immediately against the promoted standby; its
                    // replicated store answers from a warm cache.
                    RouterCounters::bump(&shared.counters.failovers);
                    continue;
                }
                if attempt + 1 < attempts {
                    RouterCounters::bump(&shared.counters.retries);
                    std::thread::sleep(jittered_backoff(
                        config.backoff_base,
                        attempt,
                        &mut rng,
                    ));
                }
            }
        }
    }
    RouterCounters::bump(&shared.counters.shed);
    protocol::error_response(
        Some(id),
        ErrorCode::ShardUnavailable,
        &format!("slot {slot_index} has no reachable shard; safe to retry"),
    )
    .render()
}

/// Exponential backoff with multiplicative jitter in `[0.5, 1.5)`, so
/// concurrent clients retrying against the same slot do not stampede in
/// lockstep.
fn jittered_backoff(base: Duration, attempt: u32, rng: &mut Xorshift) -> Duration {
    let exp = base.saturating_mul(1 << attempt.min(10));
    let jitter = 0.5 + (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
    exp.mul_f64(jitter)
}

/// A tiny xorshift64* generator — backoff jitter needs speed and no
/// coordination, not statistical quality.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        Xorshift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The router's own `metrics` payload: the same envelope and schema
/// version as a shard's, with a `router` section describing every slot
/// (health, breaker, failover, replication lag) and the router counters.
fn render_router_metrics(id: u64, shared: &RouterShared) -> Json {
    let now = Instant::now();
    let slots: Vec<Json> = shared
        .slots
        .iter()
        .enumerate()
        .map(|(i, slot)| {
            let snap = slot.snapshot(now);
            let lag = snap.shipped_records.saturating_sub(snap.applied_records);
            Json::obj(vec![
                ("slot".to_string(), Json::from(i)),
                ("primary".to_string(), Json::from(snap.primary.as_str())),
                (
                    "standby".to_string(),
                    snap.standby.as_deref().map_or(Json::Null, Json::from),
                ),
                ("active".to_string(), Json::from(snap.active.as_str())),
                ("healthy".to_string(), Json::Bool(snap.healthy)),
                ("failed_over".to_string(), Json::Bool(snap.failed_over)),
                ("breaker_open".to_string(), Json::Bool(snap.breaker_open)),
                (
                    "heartbeat_misses".to_string(),
                    Json::from(u64::from(snap.heartbeat_misses)),
                ),
                (
                    "replication".to_string(),
                    Json::obj(vec![
                        (
                            "shipped_records".to_string(),
                            Json::from(snap.shipped_records),
                        ),
                        (
                            "applied_records".to_string(),
                            Json::from(snap.applied_records),
                        ),
                        ("lag".to_string(), Json::from(lag)),
                    ]),
                ),
            ])
        })
        .collect();
    let counters = &shared.counters;
    Json::obj(vec![
        ("id".to_string(), Json::Int(id as i64)),
        ("ok".to_string(), Json::Bool(true)),
        (
            "schema_version".to_string(),
            Json::from(METRICS_SCHEMA_VERSION),
        ),
        (
            "router".to_string(),
            Json::obj(vec![
                ("shards".to_string(), Json::from(shared.slots.len())),
                ("slots".to_string(), Json::Arr(slots)),
                (
                    "counters".to_string(),
                    Json::obj(vec![
                        (
                            "forwarded".to_string(),
                            Json::from(RouterCounters::get(&counters.forwarded)),
                        ),
                        (
                            "retries".to_string(),
                            Json::from(RouterCounters::get(&counters.retries)),
                        ),
                        (
                            "failovers".to_string(),
                            Json::from(RouterCounters::get(&counters.failovers)),
                        ),
                        (
                            "shed".to_string(),
                            Json::from(RouterCounters::get(&counters.shed)),
                        ),
                    ]),
                ),
            ]),
        ),
    ])
}

/// The heartbeat sweep: ping every slot's active address, promote the
/// standby after enough misses, and scrape replication progress from the
/// `cluster` metrics section on both ends of each replicated pair.
fn heartbeat_loop(shared: &Arc<RouterShared>, stop: &AtomicBool) {
    const PING: &str = r#"{"id":0,"verb":"ping"}"#;
    const CLUSTER: &str = r#"{"id":0,"verb":"metrics","sections":["cluster"]}"#;
    let config = &shared.config;
    while !stop.load(Ordering::SeqCst) {
        for slot in &shared.slots {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let active = slot.active();
            let alive = probe(&active, PING, config.probe_timeout)
                .ok()
                .and_then(|response| {
                    let json = Json::parse(&response).ok()?;
                    json.get("pong").and_then(Json::as_bool)
                })
                .unwrap_or(false);
            if slot.record_heartbeat(&active, alive, config.heartbeat_misses)
                && slot.promote_standby()
            {
                RouterCounters::bump(&shared.counters.failovers);
            }
            if alive {
                if let Some(shipped) =
                    scrape(&active, CLUSTER, config.probe_timeout, "shipped_records")
                {
                    slot.record_replication(Some(shipped), None);
                }
            }
            // The standby reports how much it has applied — also after
            // promotion, when it doubles as the active address.
            if let Some(standby) = slot.standby() {
                if let Some(applied) =
                    scrape(standby, CLUSTER, config.probe_timeout, "applied_records")
                {
                    slot.record_replication(None, Some(applied));
                }
            }
        }
        let mut slept = Duration::ZERO;
        while slept < config.heartbeat_interval {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let step = Duration::from_millis(50).min(config.heartbeat_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// Pulls one replication counter out of a shard's `cluster` section.
fn scrape(addr: &str, line: &str, timeout: Duration, field: &str) -> Option<u64> {
    let response = probe(addr, line, timeout).ok()?;
    let json = Json::parse(&response).ok()?;
    json.get("metrics")?
        .get("cluster")?
        .get("replication")?
        .get(field)
        .and_then(Json::as_u64)
}
