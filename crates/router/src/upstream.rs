//! Upstream shard connections: one JSON line out, one JSON line back.
//!
//! Each client-connection thread owns a private cache of upstream
//! connections (one per shard address it has talked to), so forwarding
//! needs no cross-thread locking and a pipelining client reuses warm
//! TCP connections. Timeouts on every socket operation are what turn a
//! silently dead shard into a retryable transport error instead of a
//! hung client.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected upstream with a buffered read half.
#[derive(Debug)]
pub struct Upstream {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Resolves `addr` and connects with a bound on every socket operation.
fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

impl Upstream {
    /// Connects to a shard.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Upstream> {
        let writer = connect(addr, timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Upstream { writer, reader })
    }

    /// Sends one request line and reads one response line (newline
    /// stripped). An empty read is EOF — the shard hung up — and comes
    /// back as `UnexpectedEof` so the caller treats it like any other
    /// transport failure.
    pub fn round_trip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "shard closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// A per-thread cache of upstream connections keyed by shard address.
#[derive(Debug, Default)]
pub struct UpstreamPool {
    conns: HashMap<String, Upstream>,
}

impl UpstreamPool {
    /// An empty pool.
    pub fn new() -> UpstreamPool {
        UpstreamPool::default()
    }

    /// Round-trips `line` against `addr`, connecting (or reconnecting)
    /// as needed. A transport failure evicts the cached connection so
    /// the next attempt starts from a fresh connect.
    pub fn round_trip(
        &mut self,
        addr: &str,
        line: &str,
        timeout: Duration,
    ) -> io::Result<String> {
        let conn = match self.conns.entry(addr.to_string()) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.into_mut(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(Upstream::connect(addr, timeout)?)
            }
        };
        match conn.round_trip(line) {
            Ok(response) => Ok(response),
            Err(e) => {
                self.conns.remove(addr);
                Err(e)
            }
        }
    }

    /// Drops the cached connection to `addr` (if any).
    pub fn evict(&mut self, addr: &str) {
        self.conns.remove(addr);
    }
}

/// One-shot round trip on a fresh connection — the heartbeat path, where
/// reusing a cached connection would mask a shard that stopped accepting.
pub fn probe(addr: &str, line: &str, timeout: Duration) -> io::Result<String> {
    Upstream::connect(addr, timeout)?.round_trip(line)
}
