//! The consistent-hash ring mapping routing keys to hash slots.
//!
//! Every slot contributes `virtual_nodes` points to the ring (FNV-1a of
//! the slot index and vnode number); a key routes to the owner of the
//! first point at or after its own hash, wrapping at the top. Virtual
//! nodes smooth the per-slot share of the key space, and because slots
//! are *logical* (the active address behind a slot can change on
//! failover), promoting a standby never moves any key.

/// FNV-1a 64-bit: tiny, dependency-free, and plenty uniform for placing
/// vnode points and keys on the ring.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An immutable consistent-hash ring over `slots` logical slots.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, slot)` sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds a ring with `virtual_nodes` points per slot.
    ///
    /// # Panics
    ///
    /// Panics when `slots` or `virtual_nodes` is zero — an empty ring
    /// cannot route anything, so this is a configuration bug, not a
    /// runtime condition.
    pub fn new(slots: usize, virtual_nodes: usize) -> Ring {
        assert!(slots > 0, "ring needs at least one slot");
        assert!(virtual_nodes > 0, "ring needs at least one vnode per slot");
        let mut points = Vec::with_capacity(slots * virtual_nodes);
        for slot in 0..slots {
            for vnode in 0..virtual_nodes {
                let mut seed = [0u8; 16];
                seed[..8].copy_from_slice(&(slot as u64).to_le_bytes());
                seed[8..].copy_from_slice(&(vnode as u64).to_le_bytes());
                points.push((fnv1a64(&seed), slot));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The slot owning `key`.
    pub fn slot_for(&self, key: &[u8]) -> usize {
        let hash = fnv1a64(key);
        let idx = self.points.partition_point(|&(point, _)| point < hash);
        let (_, slot) = self.points[idx % self.points.len()];
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slot_owns_a_share_of_the_key_space() {
        let slots = 4;
        let ring = Ring::new(slots, 64);
        let mut counts = vec![0usize; slots];
        for i in 0..10_000u32 {
            counts[ring.slot_for(&i.to_le_bytes())] += 1;
        }
        for (slot, &count) in counts.iter().enumerate() {
            // With 64 vnodes the share should be within a loose factor of
            // fair (10000/4 = 2500).
            assert!(
                count > 800 && count < 5_000,
                "slot {slot} owns {count} of 10000 keys"
            );
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = Ring::new(3, 64);
        let b = Ring::new(3, 64);
        for i in 0..1_000u32 {
            let key = i.to_le_bytes();
            assert_eq!(a.slot_for(&key), b.slot_for(&key));
        }
    }
}
