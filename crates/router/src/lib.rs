//! `gbd-router` — the cluster routing layer of the group-based-detection
//! stack: a std-only TCP proxy that consistent-hashes
//! [`EvalRequest`](gbd_engine::EvalRequest) keys across N `gbd-serve`
//! shards speaking the same JSON-lines protocol.
//!
//! The paper's base station answers `P_M[X ≥ k]` queries; one engine
//! process already scales across cores, and the router scales across
//! *processes*: each request's cache identity
//! ([`Engine::routing_key`](gbd_engine::Engine::routing_key)) places it
//! on a consistent-hash ring, so every shard owns a disjoint share of
//! the key space and its warm caches never duplicate another shard's
//! work. Around that core, the production concerns:
//!
//! - **Health**: a heartbeat pings every shard and scrapes replication
//!   progress from the `cluster` metrics section.
//! - **Retries**: transport failures retry with jittered exponential
//!   backoff, bounded per request.
//! - **Circuit breakers**: a failure streak opens the slot's breaker so
//!   a dead shard sheds fast (`shard_unavailable`, safe to retry)
//!   instead of making every client wait out connect timeouts.
//! - **Failover**: when a shard with a configured standby is declared
//!   dead, the router promotes the standby — the hash slot re-pins, and
//!   the standby's replicated store answers with the warm cache the
//!   primary built (see `gbd_store`'s shipper / `gbd-serve`'s
//!   `replica_listen`).
//!
//! Responses are relayed byte-for-byte, so an answer through the router
//! is bit-identical to the shard's (and, by the serve layer's float
//! round-trip guarantee, to a local evaluation).
//!
//! ```no_run
//! use gbd_router::{Router, RouterConfig};
//!
//! let router = Router::bind(RouterConfig {
//!     shards: vec!["127.0.0.1:7070".into(), "127.0.0.1:7071".into()],
//!     standbys: vec![(0, "127.0.0.1:7080".into())],
//!     ..RouterConfig::default()
//! })?;
//! println!("routing on {}", router.local_addr());
//! router.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ring;
pub mod server;
pub mod slots;
pub mod upstream;

pub use ring::Ring;
pub use server::{Router, RouterConfig, RouterHandle};
pub use slots::{Route, RouterCounters, Slot, SlotSnapshot};
