//! Greedy geographic forwarding (GF).
//!
//! Each hop forwards the packet to the neighbor geographically closest to
//! the destination, provided that neighbor is strictly closer than the
//! current node; otherwise the packet is stuck at a local minimum (a
//! routing *void*) and GF fails — the case GPSR's perimeter mode recovers
//! from.

use crate::graph::UnitDiskGraph;

/// A successfully computed route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Node indices from source to destination inclusive.
    pub path: Vec<usize>,
    /// Number of hops where the packet traveled in perimeter mode
    /// (always 0 for pure greedy routes).
    pub perimeter_hops: usize,
}

impl Route {
    /// Number of hops (edges) in the route.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Why a route could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Greedy forwarding reached a node with no neighbor closer to the
    /// destination (a void). Contains the stuck node.
    Void(usize),
    /// Routing exceeded the hop budget (possible loop).
    HopBudgetExhausted,
    /// A node index was out of range.
    InvalidNode,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Void(n) => write!(f, "greedy forwarding stuck in a void at node {n}"),
            RouteError::HopBudgetExhausted => write!(f, "hop budget exhausted"),
            RouteError::InvalidNode => write!(f, "node index out of range"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Routes from `src` to `dst` by pure greedy geographic forwarding.
///
/// # Errors
///
/// Returns [`RouteError::Void`] when stuck at a local minimum,
/// [`RouteError::InvalidNode`] for bad indices, or
/// [`RouteError::HopBudgetExhausted`] after `g.len()` hops (greedy cannot
/// loop since distance strictly decreases, so this only guards degenerate
/// inputs).
pub fn greedy_route(g: &UnitDiskGraph, src: usize, dst: usize) -> Result<Route, RouteError> {
    if src >= g.len() || dst >= g.len() {
        return Err(RouteError::InvalidNode);
    }
    let dst_pos = g.position(dst);
    let mut path = vec![src];
    let mut current = src;
    let budget = g.len() + 1;
    for _ in 0..budget {
        if current == dst {
            return Ok(Route {
                path,
                perimeter_hops: 0,
            });
        }
        let cur_d = g.position(current).distance_sq(dst_pos);
        let next = g
            .neighbors(current)
            .iter()
            .copied()
            .map(|n| (n, g.position(n).distance_sq(dst_pos)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match next {
            Some((n, d)) if d < cur_d => {
                path.push(n);
                current = n;
            }
            _ => return Err(RouteError::Void(current)),
        }
    }
    Err(RouteError::HopBudgetExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_geometry::point::Point;

    #[test]
    fn routes_along_chain() {
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.1),
                Point::new(2.0, -0.1),
                Point::new(3.0, 0.0),
            ],
            1.3,
        );
        let r = greedy_route(&g, 0, 3).unwrap();
        assert_eq!(r.path, vec![0, 1, 2, 3]);
        assert_eq!(r.hops(), 3);
        assert_eq!(r.perimeter_hops, 0);
    }

    #[test]
    fn trivial_route_to_self() {
        let g = UnitDiskGraph::new(vec![Point::ORIGIN], 1.0);
        let r = greedy_route(&g, 0, 0).unwrap();
        assert_eq!(r.path, vec![0]);
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn stuck_in_void() {
        // A "C" shape: node 1 is closest to the destination among 0's
        // neighbors but has no neighbor closer than itself.
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0), // src
                Point::new(1.0, 0.0), // dead end closer to dst
                Point::new(5.0, 0.0), // dst, unreachable in one greedy step
            ],
            1.5,
        );
        match greedy_route(&g, 0, 2) {
            Err(RouteError::Void(n)) => assert_eq!(n, 1),
            other => panic!("expected void, got {other:?}"),
        }
    }

    #[test]
    fn invalid_node() {
        let g = UnitDiskGraph::new(vec![Point::ORIGIN], 1.0);
        assert_eq!(greedy_route(&g, 0, 5), Err(RouteError::InvalidNode));
    }

    #[test]
    fn greedy_hops_bounded_by_bfs_times_constant() {
        // On a random dense graph, greedy routes exist and take a small
        // number of hops.
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(77);
        let pts: Vec<Point> = (0..240)
            .map(|_| Point::new(rng.gen_range(0.0..32_000.0), rng.gen_range(0.0..32_000.0)))
            .collect();
        let g = UnitDiskGraph::new(pts, 6000.0);
        let mut successes = 0;
        for dst in [0usize, 40, 120] {
            for src in (0..240).step_by(17) {
                if let Ok(r) = greedy_route(&g, src, dst) {
                    successes += 1;
                    assert!(r.hops() <= 12, "suspiciously long greedy route");
                }
            }
        }
        // With this density, greedy should succeed most of the time.
        assert!(successes >= 30, "only {successes} greedy successes");
    }

    #[test]
    fn error_display() {
        assert!(RouteError::Void(3).to_string().contains("node 3"));
    }
}
