//! The unit-disk connectivity graph.

use gbd_geometry::point::Point;

/// An undirected unit-disk graph: nodes are points, and two nodes are
/// adjacent iff their distance is at most the communication range.
///
/// Node indices are `0 .. len`. Adjacency lists are precomputed with a
/// spatial sweep and kept sorted.
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    positions: Vec<Point>,
    range: f64,
    adjacency: Vec<Vec<usize>>,
}

impl UnitDiskGraph {
    /// Builds the graph from node positions and a communication range.
    ///
    /// # Panics
    ///
    /// Panics if `range` is negative or not finite.
    pub fn new(positions: Vec<Point>, range: f64) -> Self {
        assert!(
            range.is_finite() && range >= 0.0,
            "range must be finite and >= 0"
        );
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        let r_sq = range * range;
        // Sort indices by x to prune the pair sweep.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| positions[a].x.total_cmp(&positions[b].x));
        for (oi, &i) in order.iter().enumerate() {
            for &j in order.iter().skip(oi + 1) {
                if positions[j].x - positions[i].x > range {
                    break;
                }
                if positions[i].distance_sq(positions[j]) <= r_sq {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        UnitDiskGraph {
            positions,
            range,
            adjacency,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Communication range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// All node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Neighbors of node `i`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Whether nodes `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Average node degree (0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> UnitDiskGraph {
        UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(5.0, 0.0),
            ],
            1.2,
        )
    }

    #[test]
    fn adjacency_of_chain() {
        let g = chain();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.edge_count(), 2);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_symmetry() {
        let g = chain();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn range_is_inclusive() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)], 2.0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn sweep_matches_brute_force() {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(8);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let range = 12.0;
        let g = UnitDiskGraph::new(pts.clone(), range);
        for i in 0..pts.len() {
            let mut expect: Vec<usize> = (0..pts.len())
                .filter(|&j| j != i && pts[i].distance(pts[j]) <= range)
                .collect();
            expect.sort_unstable();
            assert_eq!(g.neighbors(i), expect.as_slice(), "node {i}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = UnitDiskGraph::new(vec![], 5.0);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }
}
