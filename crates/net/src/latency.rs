//! Per-hop latency accounting and the sensing-period deadline check.
//!
//! The paper (§4) argues that a 6-hop end-to-end delivery "can be easily
//! finished within a single sensing period, that is, 1 minute", and on that
//! basis drops the communication stack from the simulation. The
//! `comm_check` experiment uses this module to verify the claim for
//! concrete deployments instead of assuming it.

use crate::gf::Route;

/// A simple per-hop latency model:
/// `hop_latency = transmission + processing + expected MAC backoff`.
///
/// Defaults reflect a low-rate acoustic/long-range link: the paper's
/// footnote cites 5–10 kHz data rates for undersea acoustics, so a short
/// detection report (~50 bytes = 400 bits) takes well under a second to
/// transmit; processing and MAC contention dominate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Payload size in bits.
    pub payload_bits: f64,
    /// Link data rate in bits/second.
    pub data_rate_bps: f64,
    /// Per-hop processing delay in seconds.
    pub processing_s: f64,
    /// Expected per-hop MAC contention/backoff delay in seconds.
    pub mac_backoff_s: f64,
    /// Propagation speed in m/s (`1500` for underwater acoustics,
    /// `3e8` for radio).
    pub propagation_mps: f64,
}

impl LatencyModel {
    /// Model for underwater acoustic modems (paper footnote 3: ~5–10 kHz
    /// rate, acoustic propagation at ~1500 m/s).
    pub fn undersea_acoustic() -> Self {
        LatencyModel {
            payload_bits: 400.0,
            data_rate_bps: 5_000.0,
            processing_s: 0.05,
            mac_backoff_s: 0.5,
            propagation_mps: 1_500.0,
        }
    }

    /// Model for long-range terrestrial radio (border-surveillance cameras
    /// with tall antennae).
    pub fn long_range_radio() -> Self {
        LatencyModel {
            payload_bits: 400.0,
            data_rate_bps: 250_000.0,
            processing_s: 0.01,
            mac_backoff_s: 0.05,
            propagation_mps: 3.0e8,
        }
    }

    /// Latency of a single hop of the given physical length in seconds.
    pub fn hop_latency(&self, hop_length_m: f64) -> f64 {
        self.payload_bits / self.data_rate_bps
            + self.processing_s
            + self.mac_backoff_s
            + hop_length_m / self.propagation_mps
    }

    /// End-to-end latency of a route given the per-hop lengths.
    pub fn route_latency(&self, hop_lengths_m: &[f64]) -> f64 {
        hop_lengths_m.iter().map(|&l| self.hop_latency(l)).sum()
    }
}

/// Result of checking a route against the sensing-period deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineCheck {
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// The deadline (sensing period) in seconds.
    pub deadline_s: f64,
    /// Whether the report arrives before the period ends.
    pub meets_deadline: bool,
}

/// Checks whether a route delivers within one sensing period.
///
/// `positions` maps node index → position; hop lengths are derived from the
/// route path.
///
/// # Panics
///
/// Panics if the route references nodes outside `positions`.
pub fn check_deadline(
    route: &Route,
    positions: &[gbd_geometry::point::Point],
    model: &LatencyModel,
    deadline_s: f64,
) -> DeadlineCheck {
    let hop_lengths: Vec<f64> = route
        .path
        .windows(2)
        .map(|w| positions[w[0]].distance(positions[w[1]]))
        .collect();
    let latency_s = model.route_latency(&hop_lengths);
    DeadlineCheck {
        latency_s,
        deadline_s,
        meets_deadline: latency_s <= deadline_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_geometry::point::Point;

    #[test]
    fn hop_latency_components_add() {
        let m = LatencyModel {
            payload_bits: 100.0,
            data_rate_bps: 100.0,
            processing_s: 0.5,
            mac_backoff_s: 0.25,
            propagation_mps: 1000.0,
        };
        // 1s tx + 0.5 processing + 0.25 backoff + 2s propagation over 2000m
        assert!((m.hop_latency(2000.0) - 3.75).abs() < 1e-12);
    }

    #[test]
    fn undersea_six_hops_meet_one_minute() {
        // The paper's claim: 6 hops of ~6 km each within 60 s.
        let m = LatencyModel::undersea_acoustic();
        let hops = vec![6000.0; 6];
        let latency = m.route_latency(&hops);
        assert!(latency < 60.0, "latency {latency}");
        // But it is NOT trivially negligible: acoustic propagation alone is
        // 4 s/hop, so the total is tens of seconds, not milliseconds.
        assert!(latency > 20.0, "latency {latency}");
    }

    #[test]
    fn radio_is_orders_of_magnitude_faster() {
        let radio = LatencyModel::long_range_radio();
        let acoustic = LatencyModel::undersea_acoustic();
        let hops = vec![6000.0; 6];
        assert!(radio.route_latency(&hops) < acoustic.route_latency(&hops) / 50.0);
    }

    #[test]
    fn deadline_check_on_route() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(6000.0, 0.0),
            Point::new(12_000.0, 0.0),
        ];
        let route = Route {
            path: vec![0, 1, 2],
            perimeter_hops: 0,
        };
        let ok = check_deadline(&route, &positions, &LatencyModel::undersea_acoustic(), 60.0);
        assert!(ok.meets_deadline);
        let tight = check_deadline(&route, &positions, &LatencyModel::undersea_acoustic(), 1.0);
        assert!(!tight.meets_deadline);
        assert_eq!(ok.latency_s, tight.latency_s);
    }

    #[test]
    fn zero_hop_route_has_zero_latency() {
        let route = Route {
            path: vec![0],
            perimeter_hops: 0,
        };
        let check = check_deadline(
            &route,
            &[Point::ORIGIN],
            &LatencyModel::long_range_radio(),
            60.0,
        );
        assert_eq!(check.latency_s, 0.0);
        assert!(check.meets_deadline);
    }
}
