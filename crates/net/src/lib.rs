#![warn(missing_docs)]
//! Multi-hop communication substrate for the `sparse-groupdet` workspace.
//!
//! The paper assumes that every detection report reaches the base station
//! through multi-hop networking "within a single sensing period" and then
//! ignores the communication stack. This crate makes that assumption
//! checkable instead of waved-through:
//!
//! * [`graph`] — the unit-disk connectivity graph induced by the
//!   communication range;
//! * [`connectivity`] — connected components and hop-count (BFS) distances;
//! * [`gf`] — greedy geographic forwarding (GF, Karp 2000);
//! * [`gpsr`] — Gabriel-graph planarization and GPSR-style perimeter
//!   routing used as the fallback when greedy forwarding hits a void;
//! * [`latency`] — a per-hop latency model and the "delivered within one
//!   sensing period" deadline check used by the `comm_check` experiment;
//! * [`mac`] — a slotted protocol-model MAC simulation that stresses the
//!   deadline under *burst* load: the k near-simultaneous reports a target
//!   crossing actually generates.
//!
//! # Example
//!
//! ```
//! use gbd_net::graph::UnitDiskGraph;
//! use gbd_net::gf::greedy_route;
//! use gbd_geometry::point::Point;
//!
//! // A 3-node relay chain: 0 -- 1 -- 2 with range 1.5.
//! let g = UnitDiskGraph::new(
//!     vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
//!     1.5,
//! );
//! let route = greedy_route(&g, 0, 2).expect("greedy succeeds on a chain");
//! assert_eq!(route.path, vec![0, 1, 2]);
//! ```

pub mod connectivity;
pub mod gf;
pub mod gpsr;
pub mod graph;
pub mod latency;
pub mod mac;
