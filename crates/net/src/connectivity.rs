//! Connected components and hop-count distances.

use crate::graph::UnitDiskGraph;
use std::collections::VecDeque;

/// Labels each node with a component id (`0 ..` in discovery order) and
/// returns `(labels, component_count)`.
pub fn connected_components(g: &UnitDiskGraph) -> (Vec<usize>, usize) {
    let n = g.len();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Whether the whole graph is one connected component (vacuously true for
/// empty and single-node graphs).
pub fn is_connected(g: &UnitDiskGraph) -> bool {
    connected_components(g).1 <= 1
}

/// BFS hop distances from `source` to every node; `None` for unreachable
/// nodes.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn hop_distances(g: &UnitDiskGraph, source: usize) -> Vec<Option<usize>> {
    assert!(source < g.len(), "source out of range");
    let mut dist = vec![None; g.len()];
    dist[source] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].unwrap();
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The graph's hop diameter (longest shortest path over reachable pairs);
/// `0` for graphs with fewer than two nodes.
pub fn hop_diameter(g: &UnitDiskGraph) -> usize {
    let mut best = 0;
    for s in 0..g.len() {
        for d in hop_distances(g, s).into_iter().flatten() {
            best = best.max(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_geometry::point::Point;

    fn two_clusters() -> UnitDiskGraph {
        UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(11.0, 0.0),
            ],
            1.5,
        )
    }

    #[test]
    fn components_of_two_clusters() {
        let g = two_clusters();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn hop_distances_on_chain() {
        let g = two_clusters();
        let d = hop_distances(&g, 0);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], None);
    }

    #[test]
    fn diameter() {
        let g = two_clusters();
        assert_eq!(hop_diameter(&g), 2);
    }

    #[test]
    fn single_and_empty_graphs_are_connected() {
        assert!(is_connected(&UnitDiskGraph::new(vec![], 1.0)));
        assert!(is_connected(&UnitDiskGraph::new(vec![Point::ORIGIN], 1.0)));
    }

    #[test]
    fn dense_paper_network_is_connected() {
        // 240 nodes, 6 km comm range in 32 km field: the paper's claim that
        // communication coverage is available. A fixed seed keeps this
        // deterministic.
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(20);
        let pts: Vec<Point> = (0..240)
            .map(|_| Point::new(rng.gen_range(0.0..32_000.0), rng.gen_range(0.0..32_000.0)))
            .collect();
        let g = UnitDiskGraph::new(pts, 6000.0);
        assert!(is_connected(&g));
        // End-to-end in a handful of hops (paper: "around 6 hops").
        assert!(hop_diameter(&g) <= 12);
    }
}
