//! Slotted MAC contention simulation.
//!
//! [`crate::latency`] prices a route with *uncontended* per-hop costs. But
//! when a target crosses a neighborhood, several sensors report within the
//! same sensing period and their packets interfere along shared routes —
//! exactly when the paper's "delivered within one sensing period" premise
//! is under the most stress. This module simulates that burst under a
//! slotted protocol-model MAC:
//!
//! * time advances in fixed slots (one transmission per slot);
//! * a transmission `u → v` succeeds iff no *other* node in range of `v`
//!   transmits in the same slot (protocol interference model) — otherwise
//!   every collided packet is retried with a random exponential backoff;
//! * packets follow precomputed routes (GF with GPSR fallback) and are
//!   forwarded FIFO hop by hop.
//!
//! The output is the delivery-latency profile of the whole burst, checked
//! against the sensing-period deadline.

use crate::gf::greedy_route;
use crate::gpsr::gpsr_route;
use crate::graph::UnitDiskGraph;
use rand::Rng;

/// MAC parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacConfig {
    /// Slot length in seconds (one packet transmission incl. guard time).
    pub slot_s: f64,
    /// Initial backoff window in slots; doubles per collision.
    pub backoff_window: u32,
    /// Maximum backoff doublings.
    pub max_backoff_exponent: u32,
    /// Give-up limit on retransmissions of a single hop.
    pub max_retries: u32,
}

impl MacConfig {
    /// An acoustic-modem-like MAC: 1 s slots (long preambles, low rate),
    /// small initial window.
    pub fn acoustic() -> Self {
        MacConfig {
            slot_s: 1.0,
            backoff_window: 4,
            max_backoff_exponent: 5,
            max_retries: 16,
        }
    }

    /// A long-range radio MAC: 50 ms slots.
    pub fn radio() -> Self {
        MacConfig {
            slot_s: 0.05,
            backoff_window: 8,
            max_backoff_exponent: 5,
            max_retries: 16,
        }
    }
}

/// Outcome of one burst simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstOutcome {
    /// Per-packet delivery latency in seconds (`None` = dropped: no route
    /// or retry limit hit).
    pub latencies_s: Vec<Option<f64>>,
    /// Total slots simulated.
    pub slots_elapsed: u64,
    /// Total collision events observed.
    pub collisions: u64,
}

impl BurstOutcome {
    /// Fraction of packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.latencies_s.is_empty() {
            return 1.0;
        }
        self.latencies_s.iter().filter(|l| l.is_some()).count() as f64
            / self.latencies_s.len() as f64
    }

    /// Worst delivered latency; `None` if nothing was delivered.
    pub fn max_latency_s(&self) -> Option<f64> {
        self.latencies_s
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, l| Some(acc.map_or(l, |a: f64| a.max(l))))
    }

    /// Fraction of packets delivered within `deadline_s`.
    pub fn deadline_fraction(&self, deadline_s: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 1.0;
        }
        self.latencies_s
            .iter()
            .filter(|l| matches!(l, Some(v) if *v <= deadline_s))
            .count() as f64
            / self.latencies_s.len() as f64
    }
}

/// A packet in flight.
struct Packet {
    /// Remaining route (next hop first); empty = delivered.
    route: Vec<usize>,
    /// Node currently holding the packet.
    holder: usize,
    /// Slot at which the packet may next attempt transmission.
    ready_at: u64,
    /// Consecutive collisions on the current hop.
    retries: u32,
    /// Index into the outcome vector.
    id: usize,
    delivered_at: Option<u64>,
    dropped: bool,
}

/// Simulates the delivery of one report burst: every node in `sources`
/// originates one packet for `dst` in slot 0.
///
/// Deterministic given the RNG; routes are computed once per source with
/// greedy forwarding and GPSR fallback (sources with no route are reported
/// as dropped).
pub fn simulate_burst<R: Rng + ?Sized>(
    graph: &UnitDiskGraph,
    sources: &[usize],
    dst: usize,
    mac: &MacConfig,
    rng: &mut R,
) -> BurstOutcome {
    let mut packets: Vec<Packet> = Vec::with_capacity(sources.len());
    for (id, &src) in sources.iter().enumerate() {
        let route = greedy_route(graph, src, dst)
            .or_else(|_| gpsr_route(graph, src, dst, 16 * graph.len()))
            .map(|r| r.path[1..].to_vec())
            .unwrap_or_default();
        let dropped = src != dst && route.is_empty();
        packets.push(Packet {
            route,
            holder: src,
            ready_at: 0,
            retries: 0,
            id,
            delivered_at: if src == dst { Some(0) } else { None },
            dropped,
        });
    }

    let mut collisions = 0u64;
    let mut slot = 0u64;
    let max_slots = 1_000_000u64;
    while slot < max_slots {
        let pending: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.dropped && p.delivered_at.is_none() && p.ready_at <= slot)
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            if packets
                .iter()
                .all(|p| p.dropped || p.delivered_at.is_some())
            {
                break;
            }
            slot += 1;
            continue;
        }
        // Transmitters this slot: one packet per holder (FIFO by id).
        let mut transmitters: Vec<usize> = Vec::new();
        let mut holders = std::collections::HashSet::new();
        for &i in &pending {
            if holders.insert(packets[i].holder) {
                transmitters.push(i);
            }
        }
        // Interference: a reception at v fails if any OTHER transmitter is
        // within range of v (including v itself transmitting).
        let tx_nodes: Vec<usize> = transmitters.iter().map(|&i| packets[i].holder).collect();
        for &i in &transmitters {
            let receiver = packets[i].route[0];
            let jammed = tx_nodes.iter().any(|&other| {
                other != packets[i].holder
                    && (other == receiver || graph.has_edge(other, receiver))
            });
            if jammed {
                collisions += 1;
                let p = &mut packets[i];
                p.retries += 1;
                if p.retries > mac.max_retries {
                    p.dropped = true;
                    continue;
                }
                let exp = p.retries.min(mac.max_backoff_exponent);
                let window = mac.backoff_window.saturating_mul(1 << exp).max(1);
                p.ready_at = slot + 1 + rng.gen_range(0..window) as u64;
            } else {
                let p = &mut packets[i];
                p.holder = p.route.remove(0);
                p.retries = 0;
                p.ready_at = slot + 1;
                if p.route.is_empty() {
                    p.delivered_at = Some(slot + 1);
                }
            }
        }
        slot += 1;
    }

    let mut latencies_s = vec![None; sources.len()];
    for p in &packets {
        if let Some(at) = p.delivered_at {
            latencies_s[p.id] = Some(at as f64 * mac.slot_s);
        }
    }
    BurstOutcome {
        latencies_s,
        slots_elapsed: slot,
        collisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_geometry::point::Point;
    use rand::SeedableRng as _;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    fn chain(n: usize, spacing: f64, range: f64) -> UnitDiskGraph {
        UnitDiskGraph::new(
            (0..n)
                .map(|i| Point::new(i as f64 * spacing, 0.0))
                .collect(),
            range,
        )
    }

    #[test]
    fn lone_packet_takes_one_slot_per_hop() {
        let g = chain(5, 1.0, 1.2);
        let out = simulate_burst(&g, &[0], 4, &MacConfig::radio(), &mut rng(1));
        assert_eq!(out.collisions, 0);
        // 4 hops x 0.05 s.
        assert!((out.latencies_s[0].unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(out.delivery_ratio(), 1.0);
    }

    #[test]
    fn source_equal_destination_is_instant() {
        let g = chain(3, 1.0, 1.2);
        let out = simulate_burst(&g, &[2, 1], 2, &MacConfig::radio(), &mut rng(2));
        assert_eq!(out.latencies_s[0], Some(0.0));
        assert!(out.latencies_s[1].unwrap() > 0.0);
    }

    #[test]
    fn burst_contention_costs_latency_but_delivers() {
        // 8 sources funnel into one destination on a chain: heavy
        // contention near the sink.
        let g = chain(9, 1.0, 1.2);
        let sources: Vec<usize> = (1..9).collect();
        let out = simulate_burst(&g, &sources, 0, &MacConfig::radio(), &mut rng(3));
        assert_eq!(out.delivery_ratio(), 1.0, "{out:?}");
        assert!(out.collisions > 0, "expected contention");
        // Worst latency exceeds the lone-packet time for the farthest node.
        assert!(out.max_latency_s().unwrap() > 8.0 * 0.05);
    }

    #[test]
    fn disconnected_source_is_dropped() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)], 1.0);
        let out = simulate_burst(&g, &[1], 0, &MacConfig::radio(), &mut rng(4));
        assert_eq!(out.latencies_s[0], None);
        assert_eq!(out.delivery_ratio(), 0.0);
    }

    #[test]
    fn deadline_fraction_counts_correctly() {
        let g = chain(5, 1.0, 1.2);
        let out = simulate_burst(&g, &[4, 1], 0, &MacConfig::radio(), &mut rng(5));
        assert_eq!(out.deadline_fraction(60.0), 1.0);
        assert!(out.deadline_fraction(1e-9) < 1.0);
    }

    #[test]
    fn paper_burst_meets_the_one_minute_deadline() {
        // The real question: a k = 5-report burst from one neighborhood of
        // the paper's 240-node network, acoustic MAC, 60 s deadline.
        use rand::Rng as _;
        let mut r = rng(6);
        let positions: Vec<Point> = (0..240)
            .map(|_| Point::new(r.gen_range(0.0..32_000.0), r.gen_range(0.0..32_000.0)))
            .collect();
        let mut graph_positions = positions.clone();
        graph_positions.push(Point::new(16_000.0, 16_000.0)); // base station
        let g = UnitDiskGraph::new(graph_positions, 6_000.0);
        let dst = g.len() - 1;
        // Five sensors nearest to a random on-track point report at once.
        let target = Point::new(9_000.0, 22_000.0);
        let mut by_distance: Vec<usize> = (0..240).collect();
        by_distance.sort_by(|&a, &b| {
            positions[a]
                .distance(target)
                .total_cmp(&positions[b].distance(target))
        });
        let sources: Vec<usize> = by_distance[..5].to_vec();
        let out = simulate_burst(&g, &sources, dst, &MacConfig::acoustic(), &mut r);
        assert_eq!(out.delivery_ratio(), 1.0, "{out:?}");
        assert!(
            out.deadline_fraction(60.0) == 1.0,
            "burst missed the period deadline: {:?}",
            out.max_latency_s()
        );
    }

    #[test]
    fn retry_exhaustion_drops_packets() {
        // Zero-retry MAC with guaranteed collisions: two sources one hop
        // from the sink always jam each other on the first slot.
        let g = chain(3, 1.0, 2.5); // fully connected triangle-ish chain
        let strict = MacConfig {
            max_retries: 0,
            ..MacConfig::radio()
        };
        let out = simulate_burst(&g, &[1, 2], 0, &strict, &mut rng(7));
        assert!(out.delivery_ratio() < 1.0);
    }
}
