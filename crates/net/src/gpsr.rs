//! Gabriel planarization and GPSR-style perimeter routing.
//!
//! GPSR (Karp & Kung 2000) recovers from greedy-forwarding voids by
//! traversing a planarized subgraph with the right-hand rule until the
//! packet is closer to the destination than where it entered perimeter
//! mode, then resumes greedy forwarding.
//!
//! This implementation planarizes with the Gabriel graph and applies the
//! right-hand rule with an entry-distance escape condition. It omits full
//! GPSR's face-crossing bookkeeping; on pathological topologies the
//! traversal is cut off by the hop budget instead of looping forever. For
//! the random deployments this workspace simulates, the simplification
//! recovers the routes that matter (verified against BFS reachability in
//! the tests).

use crate::gf::{Route, RouteError};
use crate::graph::UnitDiskGraph;

/// Adjacency lists of the Gabriel subgraph: the edge `(u, v)` is kept iff
/// no third node lies strictly inside the disk having `uv` as diameter.
///
/// The Gabriel graph of a unit-disk graph is planar and connected whenever
/// the unit-disk graph is connected.
pub fn gabriel_adjacency(g: &UnitDiskGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut adj = vec![Vec::new(); n];
    for u in 0..n {
        'edge: for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            let pu = g.position(u);
            let pv = g.position(v);
            let mid = gbd_geometry::point::Point::new((pu.x + pv.x) / 2.0, (pu.y + pv.y) / 2.0);
            let r_sq = pu.distance_sq(pv) / 4.0;
            // Any witness inside the diameter disk is within d(u,v) of u, so
            // it is a unit-disk neighbor of u; scanning u's neighbors is
            // exhaustive.
            for &w in g.neighbors(u) {
                if w != v && g.position(w).distance_sq(mid) < r_sq - 1e-12 {
                    continue 'edge;
                }
            }
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
    }
    adj
}

/// Routes from `src` to `dst` with greedy forwarding plus Gabriel/right-hand
/// perimeter recovery.
///
/// # Errors
///
/// Returns [`RouteError::InvalidNode`] for bad indices and
/// [`RouteError::HopBudgetExhausted`] if the packet takes more than
/// `max_hops` hops (disconnected destination or a pathological perimeter
/// orbit).
pub fn gpsr_route(
    g: &UnitDiskGraph,
    src: usize,
    dst: usize,
    max_hops: usize,
) -> Result<Route, RouteError> {
    if src >= g.len() || dst >= g.len() {
        return Err(RouteError::InvalidNode);
    }
    let planar = gabriel_adjacency(g);
    let dst_pos = g.position(dst);
    let mut path = vec![src];
    let mut current = src;
    let mut perimeter_hops = 0;
    // Some(entry_distance_sq, previous node) while in perimeter mode.
    let mut perimeter: Option<(f64, usize)> = None;

    for _ in 0..max_hops {
        if current == dst {
            return Ok(Route {
                path,
                perimeter_hops,
            });
        }
        let cur_d = g.position(current).distance_sq(dst_pos);

        if let Some((entry_d, _)) = perimeter {
            if cur_d < entry_d {
                perimeter = None; // escaped the void: resume greedy
            }
        }

        if perimeter.is_none() {
            // Greedy step on the full graph.
            let next = g
                .neighbors(current)
                .iter()
                .copied()
                .map(|nb| (nb, g.position(nb).distance_sq(dst_pos)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match next {
                Some((nb, d)) if d < cur_d => {
                    path.push(nb);
                    current = nb;
                    continue;
                }
                _ => {
                    // Void: enter perimeter mode heading right-hand around
                    // it, referenced from the direction toward the
                    // destination.
                    perimeter = Some((cur_d, usize::MAX));
                }
            }
        }

        // Perimeter step on the planar subgraph.
        let (entry_d, prev) = perimeter.unwrap();
        let nbrs = &planar[current];
        if nbrs.is_empty() {
            return Err(RouteError::Void(current));
        }
        let pcur = g.position(current);
        let ref_angle = if prev == usize::MAX {
            (dst_pos - pcur).heading()
        } else {
            (g.position(prev) - pcur).heading()
        };
        // Right-hand rule: first edge counterclockwise from the reference.
        let mut best: Option<(f64, usize)> = None;
        for &nb in nbrs {
            if nb == prev && nbrs.len() > 1 {
                continue; // only return along the incoming edge as last resort
            }
            let ang = (g.position(nb) - pcur).heading();
            let mut delta = ang - ref_angle;
            while delta <= 1e-12 {
                delta += 2.0 * std::f64::consts::PI;
            }
            if best.is_none_or(|(bd, _)| delta < bd) {
                best = Some((delta, nb));
            }
        }
        let (_, nb) = best.unwrap_or((0.0, prev));
        perimeter = Some((entry_d, current));
        path.push(nb);
        current = nb;
        perimeter_hops += 1;
    }
    if current == dst {
        return Ok(Route {
            path,
            perimeter_hops,
        });
    }
    Err(RouteError::HopBudgetExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::hop_distances;
    use gbd_geometry::point::Point;

    #[test]
    fn gabriel_removes_long_diagonals() {
        // An obtuse triangle: the long edge 0-2 fails the Gabriel test
        // because node 1 sits strictly inside its diameter circle. (A right
        // triangle would not do: Thales puts the witness exactly on the
        // circle.)
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.1),
                Point::new(2.0, 0.0),
            ],
            2.5,
        );
        let adj = gabriel_adjacency(&g);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn gabriel_keeps_clean_edges() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 2.0);
        let adj = gabriel_adjacency(&g);
        assert_eq!(adj[0], vec![1]);
    }

    #[test]
    fn gpsr_succeeds_where_greedy_fails() {
        // A "U" around a void: greedy from 0 toward 5 gets stuck at 1
        // (no neighbor closer), perimeter mode walks around the arm.
        //
        //   0 - 1        5
        //       |        |
        //       2 -- 3 - 4
        let pts = vec![
            Point::new(0.0, 2.0),
            Point::new(1.0, 2.0),
            Point::new(1.0, 1.0),
            Point::new(2.2, 1.0),
            Point::new(3.2, 1.0),
            Point::new(3.2, 2.0),
        ];
        let g = UnitDiskGraph::new(pts, 1.3);
        assert!(crate::gf::greedy_route(&g, 0, 5).is_err());
        let r = gpsr_route(&g, 0, 5, 50).expect("gpsr should recover");
        assert_eq!(*r.path.first().unwrap(), 0);
        assert_eq!(*r.path.last().unwrap(), 5);
        assert!(r.perimeter_hops > 0);
    }

    #[test]
    fn gpsr_equals_greedy_when_no_void() {
        let g = UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
            1.2,
        );
        let r = gpsr_route(&g, 0, 2, 10).unwrap();
        assert_eq!(r.path, vec![0, 1, 2]);
        assert_eq!(r.perimeter_hops, 0);
    }

    #[test]
    fn gpsr_fails_cleanly_on_disconnected() {
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 1.0);
        assert!(gpsr_route(&g, 0, 1, 20).is_err());
    }

    #[test]
    fn gpsr_delivery_rate_on_random_sparse_graph() {
        // On a connected random graph, GPSR should deliver from (almost)
        // everywhere; compare against BFS reachability.
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(4);
        let pts: Vec<Point> = (0..150)
            .map(|_| Point::new(rng.gen_range(0.0..32_000.0), rng.gen_range(0.0..32_000.0)))
            .collect();
        let g = UnitDiskGraph::new(pts, 6000.0);
        let dst = 0;
        let reach = hop_distances(&g, dst);
        let mut delivered = 0;
        let mut reachable = 0;
        for (src, hops) in reach.iter().enumerate().skip(1) {
            if hops.is_none() {
                continue;
            }
            reachable += 1;
            if let Ok(r) = gpsr_route(&g, src, dst, 600) {
                delivered += 1;
                assert_eq!(*r.path.last().unwrap(), dst);
            }
        }
        assert!(reachable > 100);
        // The simplified perimeter mode may drop a few pathological routes;
        // require a high delivery rate rather than perfection.
        assert!(
            delivered as f64 >= 0.95 * reachable as f64,
            "delivered {delivered}/{reachable}"
        );
    }
}
