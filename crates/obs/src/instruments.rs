//! The instrument primitives every other layer records into: a monotonic
//! [`Counter`] and a log-bucketed latency [`Histogram`], both lock-free on
//! the hot path, plus the plain-data [`HistogramSnapshot`] read off a
//! histogram in one pass.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two microsecond buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` µs (bucket 0 holds `[0, 2)`). 40 buckets cover up to
/// ~12.7 days, far beyond any deadline the engine accepts.
pub const BUCKETS: usize = 40;

/// A monotonically increasing counter.
///
/// Incrementing is a single relaxed fetch-add; readers see a value that is
/// never smaller than any previously observed one, which is what makes
/// windowed deltas (`current - last_sampled`) telescope exactly to the
/// lifetime total across any number of windows.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The lifetime total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram of durations (recorded in microseconds).
///
/// Recording is three relaxed atomic ops (bucket, count+sum, max), so the
/// per-sample cost is negligible next to an engine evaluation. Quantiles
/// are read as the upper bound of the bucket containing the rank — an
/// upper estimate with at most 2× resolution error, capped at the observed
/// maximum so no reported quantile ever exceeds reality.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// The bucket index a microsecond sample falls into.
fn bucket_index(us: u64) -> usize {
    (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Upper bound (µs) of bucket `i`, before capping at the observed max.
fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&self, latency: Duration) {
        self.record_us(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one sample already expressed in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Reads every atomic once into a plain-data snapshot. All quantile and
    /// rendering queries should go through the snapshot so one report is
    /// internally consistent instead of re-reading live atomics mid-render.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum_us: self.sum_us(),
            max_us: self.max_us(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A histogram read once: safe to query repeatedly without tearing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples (µs).
    pub sum_us: u64,
    /// Largest sample (µs); meaningless when `count == 0`.
    pub max_us: u64,
    /// Per-bucket sample counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The snapshot is empty (nothing recorded at snapshot time).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample, or `None` when empty — empty histograms
    /// are unambiguous instead of reporting a raw `0` that could be a
    /// genuine zero-microsecond sample.
    pub fn max(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max_us)
        }
    }

    /// Mean sample (µs), or `None` when empty.
    pub fn mean_us(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum_us as f64 / self.count as f64)
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); `None` when empty. Bounds are capped at the
    /// observed max, so p100 (and every lower quantile) never exceeds
    /// reality.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(bucket_bound(i).min(self.max_us));
            }
        }
        Some(self.max_us)
    }

    /// Cumulative bucket pairs `(upper_bound_us, count_at_or_below)` for
    /// exposition, covering only the occupied prefix of the bucket range.
    /// The final pair always carries the full count (the `+Inf` bucket is
    /// the caller's to emit).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut seen = 0u64;
        for i in 0..=last {
            seen += self.buckets[i];
            out.push((bucket_bound(i), seen));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_us(0.5), None);
        for us in [10u64, 20, 40, 80, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_us, 1150);
        assert_eq!(s.max(), Some(1000));
        let p50 = s.quantile_us(0.5).unwrap();
        // The median sample is 40µs; its bucket [32,64) reports 63.
        assert!((40..=63).contains(&p50), "p50 = {p50}");
        // p100 is capped at the observed max rather than the bucket bound.
        assert_eq!(s.quantile_us(1.0), Some(1000));
        assert!(s.quantile_us(0.0).unwrap() <= p50);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.quantile_us(0.0).unwrap() <= 1);
        assert_eq!(s.quantile_us(1.0), Some(100_000_000_000));
    }

    #[test]
    fn empty_histogram_is_unambiguous() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.mean_us(), None);
        assert_eq!(s.quantile_us(0.99), None);
        assert!(s.cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_end_at_total_count() {
        let h = Histogram::new();
        for us in [1u64, 3, 3, 100, 40_000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 5);
        // Bounds strictly increase and counts never decrease.
        for pair in cum.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }
}
