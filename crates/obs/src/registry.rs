//! The instrument registry: named counters, polled counters, gauges, and
//! histograms, each kept both as lifetime totals and as a fixed-size ring
//! of windowed deltas sampled by [`Registry::sample_window`] (usually
//! driven by a [`Ticker`](crate::Ticker)).
//!
//! Sampling computes `current - last_sampled` for every monotonic series
//! in one pass, so the deltas of consecutive windows telescope exactly to
//! the lifetime totals — no sample is lost or double-counted regardless of
//! how recording threads race the sampler (a sample racing the window
//! boundary lands in exactly one of the two adjacent windows).
//!
//! Watchers subscribe with a **bounded** queue: a slow consumer causes the
//! sampler's `try_send` to fail, the window is counted as dropped for that
//! watcher, and the lag is reported on its next delivered message — never
//! unbounded buffering inside the server.

use crate::instruments::{Counter, Histogram, HistogramSnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default number of windows the delta ring retains.
pub const DEFAULT_RING_WINDOWS: usize = 120;

/// Extra live windows a subscription can buffer beyond the ring replay.
const WATCH_LIVE_CAPACITY: usize = 16;

/// A closure polled for a monotonic cumulative value (e.g. cache hits kept
/// by another subsystem's own atomics).
type PollFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// A closure polled for an instantaneous value (e.g. queue depth).
type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

struct Instruments {
    counters: Vec<(String, Arc<Counter>)>,
    polled: Vec<(String, PollFn)>,
    gauges: Vec<(String, GaugeFn)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// The instrument names of a window, shared by every window sampled while
/// the registered set is unchanged. Counter names cover registered
/// counters first, then polled counters, in registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Names of the counter series (owned counters, then polled).
    pub counters: Vec<String>,
    /// Names of the histogram series.
    pub histograms: Vec<String>,
}

/// One sampled window of deltas, plus the lifetime totals at its end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// 1-based window sequence number since registry creation.
    pub seq: u64,
    /// Wall-clock time the window closed, in Unix milliseconds.
    pub closed_unix_ms: u64,
    /// Actual elapsed time the window covers, in milliseconds.
    pub duration_ms: u64,
    /// Instrument names, index-aligned with the series below.
    pub schema: Arc<Schema>,
    /// Per-counter increase during this window.
    pub counter_deltas: Vec<u64>,
    /// Per-counter lifetime total at window close.
    pub counter_totals: Vec<u64>,
    /// Per-histogram sample-count increase during this window.
    pub hist_count_deltas: Vec<u64>,
    /// Per-histogram sample-sum increase (µs) during this window.
    pub hist_sum_deltas_us: Vec<u64>,
    /// Per-histogram lifetime sample count at window close.
    pub hist_count_totals: Vec<u64>,
}

impl Window {
    /// The delta of the counter named `name` in this window, if present.
    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        let i = self.schema.counters.iter().position(|n| n == name)?;
        self.counter_deltas.get(i).copied()
    }

    /// The lifetime total of the counter named `name` at window close.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let i = self.schema.counters.iter().position(|n| n == name)?;
        self.counter_totals.get(i).copied()
    }
}

/// One watch delivery: the window plus how many windows this watcher
/// missed since the previous delivered message (0 when keeping up).
#[derive(Debug, Clone)]
pub struct WatchMsg {
    /// The sampled window.
    pub window: Arc<Window>,
    /// Windows dropped for this watcher immediately before this one.
    pub lagged: u64,
}

/// A cancellation token shared between the subscription owner and the
/// registry; setting it removes the watcher on the next reap or sample.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token not yet tied to a registry —
    /// for callers that reuse the cancel/reap idiom for their own streams
    /// (e.g. serve-side detection sessions).
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Marks the subscription cancelled. Call
    /// [`Registry::reap_cancelled`] afterwards to drop the sender
    /// immediately (waking a consumer blocked on `recv`).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called — e.g. a
    /// finished stream marking its subscription dead so teardown paths can
    /// distinguish live watches from already-completed ones.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// A live watch subscription: a bounded receiver of [`WatchMsg`]s plus its
/// cancellation token.
pub struct Subscription {
    /// Delivers one message per sampled window (replayed ring first when
    /// requested at subscribe time).
    pub rx: Receiver<WatchMsg>,
    /// Token to cancel this subscription from another thread.
    pub token: CancelToken,
}

struct Watcher {
    tx: SyncSender<WatchMsg>,
    token: CancelToken,
    /// Windows dropped since the last successful delivery.
    lagged: u64,
}

struct SampleState {
    seq: u64,
    window_opened: Instant,
    last_counters: Vec<u64>,
    last_hist: Vec<(u64, u64)>,
    schema: Arc<Schema>,
    /// Instrument count the cached schema was built from.
    schema_len: (usize, usize),
}

/// Observability side-counters of the registry itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchStats {
    /// Live subscriptions.
    pub watchers: usize,
    /// Windows sampled since registry creation.
    pub windows_sampled: u64,
    /// Window deliveries dropped because a watcher's queue was full.
    pub windows_dropped: u64,
}

/// A point-in-time reading of every registered instrument, taken in one
/// pass so a report never mixes values from different moments.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Wall-clock time of the snapshot, Unix milliseconds.
    pub at_unix_ms: u64,
    /// `(name, lifetime total)` for owned and polled counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, current value)` for gauges.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Registry self-observation.
    pub watch: WatchStats,
}

impl Snapshot {
    /// The lifetime total of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The snapshot of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// The registry (see module docs).
pub struct Registry {
    instruments: Mutex<Instruments>,
    sample: Mutex<SampleState>,
    ring: Mutex<VecDeque<Arc<Window>>>,
    watchers: Mutex<Vec<Watcher>>,
    windows_sampled: Counter,
    windows_dropped: Counter,
    ring_cap: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Nothing protected here is left half-updated by a panic (plain Vecs
    // of owned values), so recover the guard instead of propagating
    // poison.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_ring(DEFAULT_RING_WINDOWS)
    }
}

impl Registry {
    /// A registry retaining [`DEFAULT_RING_WINDOWS`] windows.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry retaining `ring_cap` windows (min 1).
    pub fn with_ring(ring_cap: usize) -> Registry {
        Registry {
            instruments: Mutex::new(Instruments {
                counters: Vec::new(),
                polled: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            }),
            sample: Mutex::new(SampleState {
                seq: 0,
                window_opened: Instant::now(),
                last_counters: Vec::new(),
                last_hist: Vec::new(),
                schema: Arc::new(Schema {
                    counters: Vec::new(),
                    histograms: Vec::new(),
                }),
                schema_len: (0, 0),
            }),
            ring: Mutex::new(VecDeque::new()),
            watchers: Mutex::new(Vec::new()),
            windows_sampled: Counter::new(),
            windows_dropped: Counter::new(),
            ring_cap: ring_cap.max(1),
        }
    }

    /// Registers (or returns the existing) counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = lock(&self.instruments);
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// Registers a polled counter: `poll` is called at sample/snapshot
    /// time and must be monotonically non-decreasing for windowed deltas
    /// to be meaningful.
    pub fn polled_counter(
        &self,
        name: &str,
        poll: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> &Self {
        lock(&self.instruments)
            .polled
            .push((name.to_string(), Box::new(poll)));
        self
    }

    /// Registers a gauge: an instantaneous value sampled at snapshot time
    /// (not windowed — deltas of non-monotonic values are meaningless).
    pub fn gauge(&self, name: &str, poll: impl Fn() -> f64 + Send + Sync + 'static) -> &Self {
        lock(&self.instruments)
            .gauges
            .push((name.to_string(), Box::new(poll)));
        self
    }

    /// Registers (or returns the existing) histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = lock(&self.instruments);
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Reads every instrument once.
    pub fn snapshot(&self) -> Snapshot {
        let inner = lock(&self.instruments);
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        counters.extend(inner.polled.iter().map(|(n, f)| (n.clone(), f())));
        Snapshot {
            at_unix_ms: unix_ms(),
            gauges: inner.gauges.iter().map(|(n, f)| (n.clone(), f())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            counters,
            watch: self.watch_stats(),
        }
    }

    /// The registry's own side-counters.
    pub fn watch_stats(&self) -> WatchStats {
        WatchStats {
            watchers: lock(&self.watchers).len(),
            windows_sampled: self.windows_sampled.get(),
            windows_dropped: self.windows_dropped.get(),
        }
    }

    /// Windows currently retained in the ring, oldest first.
    pub fn windows(&self) -> Vec<Arc<Window>> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// Closes the current window: computes all deltas in one pass, appends
    /// the window to the ring (evicting the oldest past capacity), and
    /// broadcasts it to every live watcher. Returns the window.
    ///
    /// Drives both the [`Ticker`](crate::Ticker) and deterministic tests.
    pub fn sample_window(&self) -> Arc<Window> {
        let inner = lock(&self.instruments);
        let mut state = lock(&self.sample);
        let n_counters = inner.counters.len() + inner.polled.len();
        let n_hist = inner.histograms.len();
        if state.schema_len != (n_counters, n_hist) {
            state.schema = Arc::new(Schema {
                counters: inner
                    .counters
                    .iter()
                    .map(|(n, _)| n.clone())
                    .chain(inner.polled.iter().map(|(n, _)| n.clone()))
                    .collect(),
                histograms: inner.histograms.iter().map(|(n, _)| n.clone()).collect(),
            });
            state.schema_len = (n_counters, n_hist);
        }
        state.last_counters.resize(n_counters, 0);
        state.last_hist.resize(n_hist, (0, 0));

        let mut counter_totals = Vec::with_capacity(n_counters);
        counter_totals.extend(inner.counters.iter().map(|(_, c)| c.get()));
        counter_totals.extend(inner.polled.iter().map(|(_, f)| f()));
        let counter_deltas: Vec<u64> = counter_totals
            .iter()
            .zip(&state.last_counters)
            .map(|(&cur, &last)| cur.saturating_sub(last))
            .collect();

        let hist_now: Vec<(u64, u64)> = inner
            .histograms
            .iter()
            .map(|(_, h)| (h.count(), h.sum_us()))
            .collect();
        let hist_count_deltas: Vec<u64> = hist_now
            .iter()
            .zip(&state.last_hist)
            .map(|(&(c, _), &(lc, _))| c.saturating_sub(lc))
            .collect();
        let hist_sum_deltas_us: Vec<u64> = hist_now
            .iter()
            .zip(&state.last_hist)
            .map(|(&(_, s), &(_, ls))| s.saturating_sub(ls))
            .collect();
        let hist_count_totals: Vec<u64> = hist_now.iter().map(|&(c, _)| c).collect();

        let now = Instant::now();
        state.seq += 1;
        let window = Arc::new(Window {
            seq: state.seq,
            closed_unix_ms: unix_ms(),
            duration_ms: u64::try_from(
                now.saturating_duration_since(state.window_opened)
                    .as_millis(),
            )
            .unwrap_or(u64::MAX),
            schema: Arc::clone(&state.schema),
            counter_deltas,
            counter_totals: counter_totals.clone(),
            hist_count_deltas,
            hist_sum_deltas_us,
            hist_count_totals,
        });
        state.last_counters = counter_totals;
        state.last_hist = hist_now;
        state.window_opened = now;
        drop(state);
        drop(inner);

        {
            let mut ring = lock(&self.ring);
            ring.push_back(Arc::clone(&window));
            while ring.len() > self.ring_cap {
                ring.pop_front();
            }
        }
        self.windows_sampled.inc();
        self.broadcast(&window);
        window
    }

    fn broadcast(&self, window: &Arc<Window>) {
        let mut watchers = lock(&self.watchers);
        watchers.retain_mut(|w| {
            if w.token.is_cancelled() {
                return false;
            }
            let msg = WatchMsg {
                window: Arc::clone(window),
                lagged: w.lagged,
            };
            match w.tx.try_send(msg) {
                Ok(()) => {
                    w.lagged = 0;
                    true
                }
                Err(TrySendError::Full(_)) => {
                    w.lagged += 1;
                    self.windows_dropped.inc();
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }

    /// Subscribes to future windows. With `replay`, the current ring
    /// contents are delivered first (the channel is sized to hold the full
    /// replay plus a bounded live margin), so a late subscriber still sees
    /// every window since boot while the ring has not wrapped.
    pub fn subscribe(&self, replay: bool) -> Subscription {
        let backlog: Vec<Arc<Window>> = if replay { self.windows() } else { Vec::new() };
        let (tx, rx) = mpsc::sync_channel(backlog.len() + WATCH_LIVE_CAPACITY);
        for window in backlog {
            // Cannot fail: the channel was sized for the whole backlog and
            // nothing else has the sender yet.
            let _ = tx.try_send(WatchMsg { window, lagged: 0 });
        }
        let token = CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
        };
        lock(&self.watchers).push(Watcher {
            tx,
            token: token.clone(),
            lagged: 0,
        });
        Subscription { rx, token }
    }

    /// Drops every cancelled watcher now (instead of at the next sample),
    /// waking consumers blocked on their receivers.
    pub fn reap_cancelled(&self) {
        lock(&self.watchers).retain(|w| !w.token.is_cancelled());
    }

    /// Drops every watcher, cancelled or not — the shutdown path, where
    /// any consumer still blocked on its receiver must wake with an error.
    pub fn reap_all(&self) {
        let mut watchers = lock(&self.watchers);
        for w in watchers.iter() {
            w.token.cancel();
        }
        watchers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn window_deltas_telescope_to_totals() {
        let r = Registry::new();
        let c = r.counter("reqs");
        let h = r.histogram("lat_us");
        c.add(3);
        h.record(Duration::from_micros(10));
        let w1 = r.sample_window();
        assert_eq!(w1.seq, 1);
        assert_eq!(w1.counter_delta("reqs"), Some(3));
        assert_eq!(w1.counter_total("reqs"), Some(3));
        c.add(2);
        h.record(Duration::from_micros(20));
        h.record(Duration::from_micros(30));
        let w2 = r.sample_window();
        assert_eq!(w2.counter_delta("reqs"), Some(2));
        assert_eq!(w2.counter_total("reqs"), Some(5));
        assert_eq!(w2.hist_count_deltas, vec![2]);
        assert_eq!(w2.hist_sum_deltas_us, vec![50]);
        assert_eq!(w2.hist_count_totals, vec![3]);
        let sum: u64 = [&w1, &w2]
            .iter()
            .filter_map(|w| w.counter_delta("reqs"))
            .sum();
        assert_eq!(sum, c.get());
    }

    #[test]
    fn polled_counters_window_like_owned_ones() {
        let shared = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let r = Registry::new();
        let probe = Arc::clone(&shared);
        r.polled_counter("ext", move || probe.load(Ordering::Relaxed));
        shared.store(7, Ordering::Relaxed);
        let w1 = r.sample_window();
        assert_eq!(w1.counter_delta("ext"), Some(7));
        shared.store(9, Ordering::Relaxed);
        let w2 = r.sample_window();
        assert_eq!(w2.counter_delta("ext"), Some(2));
        assert_eq!(w2.counter_total("ext"), Some(9));
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let r = Registry::with_ring(3);
        r.counter("c");
        for _ in 0..5 {
            r.sample_window();
        }
        let windows = r.windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].seq, 3);
        assert_eq!(windows[2].seq, 5);
        assert_eq!(r.watch_stats().windows_sampled, 5);
    }

    #[test]
    fn subscribe_replays_ring_then_streams_live() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(1);
        r.sample_window();
        c.add(4);
        r.sample_window();
        let sub = r.subscribe(true);
        let first = sub.rx.try_recv().unwrap();
        assert_eq!(first.window.seq, 1);
        assert_eq!(sub.rx.try_recv().unwrap().window.seq, 2);
        assert!(sub.rx.try_recv().is_err());
        c.add(5);
        r.sample_window();
        let live = sub.rx.try_recv().unwrap();
        assert_eq!(live.window.seq, 3);
        assert_eq!(live.window.counter_total("c"), Some(10));
        let replayed_plus_live = 1 + 4 + 5;
        assert_eq!(replayed_plus_live, c.get());
    }

    #[test]
    fn slow_watchers_lag_instead_of_buffering_unboundedly() {
        let r = Registry::new();
        r.counter("c");
        let sub = r.subscribe(false);
        // Overfill the live margin without draining.
        for _ in 0..(WATCH_LIVE_CAPACITY + 5) {
            r.sample_window();
        }
        assert_eq!(r.watch_stats().windows_dropped, 5);
        // Drain the buffered prefix: no lag recorded on those.
        for _ in 0..WATCH_LIVE_CAPACITY {
            assert_eq!(sub.rx.try_recv().unwrap().lagged, 0);
        }
        // The next delivered window reports the 5 dropped before it.
        r.sample_window();
        assert_eq!(sub.rx.try_recv().unwrap().lagged, 5);
    }

    #[test]
    fn cancel_wakes_and_removes_the_watcher() {
        let r = Registry::new();
        r.counter("c");
        let sub = r.subscribe(false);
        assert_eq!(r.watch_stats().watchers, 1);
        sub.token.cancel();
        r.reap_cancelled();
        assert_eq!(r.watch_stats().watchers, 0);
        assert!(sub.rx.recv().is_err(), "sender should be dropped");
    }

    #[test]
    fn snapshot_reads_all_instrument_kinds() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.polled_counter("b", || 11);
        r.gauge("g", || 1.5);
        r.histogram("h").record(Duration::from_micros(100));
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(2));
        assert_eq!(s.counter("b"), Some(11));
        assert_eq!(s.gauges, vec![("g".to_string(), 1.5)]);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }
}
