//! Plain-text exposition: renders a [`Snapshot`] in the Prometheus text
//! format (version 0.0.4) and serves it over a tiny hand-rolled HTTP
//! endpoint, in the same dependency-free spirit as `serve::json`.

use crate::registry::{Registry, Snapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// How long a scraper may take to deliver its request before the
/// connection is dropped.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request head we will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 8192;

/// Maps an instrument name to a Prometheus-safe metric name: `gbd_`
/// prefix, every character outside `[a-zA-Z0-9_:]` folded to `_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("gbd_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Counter metric name with the conventional `_total` suffix.
fn counter_name(name: &str) -> String {
    let base = metric_name(name);
    if base.ends_with("_total") {
        base
    } else {
        base + "_total"
    }
}

/// Renders `snapshot` in the Prometheus text exposition format.
///
/// Counters emit a `_total`-suffixed series; histograms emit cumulative
/// `_bucket{le="..."}` lines (bounds capped at the observed max on the
/// final occupied bucket via the quantile path), `_sum`, `_count`, and
/// convenience `_p50`/`_p95`/`_p99` gauges omitted entirely when the
/// histogram is empty — an absent series is unambiguous where a zero is
/// not.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.counters {
        let metric = counter_name(name);
        out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let metric = metric_name(name);
        out.push_str(&format!("# TYPE {metric} gauge\n{metric} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let metric = metric_name(name);
        out.push_str(&format!("# TYPE {metric} histogram\n"));
        for (bound, cumulative) in hist.cumulative_buckets() {
            let le = bound.min(hist.max_us);
            out.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{metric}_bucket{{le=\"+Inf\"}} {count}\n{metric}_sum {sum}\n{metric}_count {count}\n",
            count = hist.count,
            sum = hist.sum_us,
        ));
        for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            if let Some(v) = hist.quantile_us(q) {
                out.push_str(&format!(
                    "# TYPE {metric}_{label} gauge\n{metric}_{label} {v}\n"
                ));
            }
        }
    }
    let watch = snapshot.watch;
    out.push_str(&format!(
        "# TYPE gbd_obs_watchers gauge\ngbd_obs_watchers {}\n",
        watch.watchers
    ));
    out.push_str(&format!(
        "# TYPE gbd_obs_windows_sampled_total counter\ngbd_obs_windows_sampled_total {}\n",
        watch.windows_sampled
    ));
    out.push_str(&format!(
        "# TYPE gbd_obs_windows_dropped_total counter\ngbd_obs_windows_dropped_total {}\n",
        watch.windows_dropped
    ));
    out
}

/// A scrape endpoint serving `GET /metrics` from a registry snapshot.
/// Single-threaded by design: scrapes are rare, tiny, and read-only, so
/// handling them inline keeps the endpoint at one polling thread.
pub struct TextEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TextEndpoint {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
    ) -> std::io::Result<TextEndpoint> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-expose".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_scrape(stream, &registry),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;
        Ok(TextEndpoint {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TextEndpoint {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one HTTP request head and answers it. Any I/O failure just drops
/// the connection — the scraper retries on its next interval.
fn serve_scrape(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_REQUEST_BYTES {
            let _ = respond(&mut stream, "400 Bad Request", "request too large\n");
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        let _ = respond(&mut stream, "405 Method Not Allowed", "GET only\n");
        return;
    }
    if path != "/metrics" && path != "/metrics/" {
        let _ = respond(&mut stream, "404 Not Found", "try /metrics\n");
        return;
    }
    let body = render_prometheus(&registry.snapshot());
    let _ = respond(&mut stream, "200 OK", &body);
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("evaluated").add(7);
        r.gauge("queue_depth", || 2.0);
        let h = r.histogram("latency_us");
        h.record_us(10);
        h.record_us(100);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE gbd_evaluated_total counter\ngbd_evaluated_total 7\n"));
        assert!(text.contains("gbd_queue_depth 2\n"));
        assert!(text.contains("gbd_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("gbd_latency_us_sum 110\n"));
        assert!(text.contains("gbd_latency_us_count 2\n"));
        // Quantile gauges are capped at the observed max.
        assert!(text.contains("gbd_latency_us_p99 100\n"));
        assert!(text.contains("gbd_obs_windows_sampled_total 0\n"));
    }

    #[test]
    fn empty_histograms_emit_no_quantile_series() {
        let r = Registry::new();
        r.histogram("idle_us");
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("gbd_idle_us_count 0\n"));
        assert!(!text.contains("gbd_idle_us_p50"));
        assert!(!text.contains("gbd_idle_us_bucket{le=\"0\"}"));
    }

    #[test]
    fn endpoint_serves_metrics_and_rejects_other_paths() {
        let registry = Arc::new(Registry::new());
        registry.counter("scraped").add(3);
        let mut endpoint = TextEndpoint::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = endpoint.local_addr();

        let ok = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("gbd_scraped_total 3\n"));

        let missing = scrape(addr, "GET /other HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let post = scrape(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");

        endpoint.stop();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close on some platforms;
                // binding the port again proves the listener is gone.
                TcpListener::bind(addr).is_ok()
            }
        );
    }
}
