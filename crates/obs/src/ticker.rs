//! The background sampler: a thread that closes a registry window every
//! `interval`, feeding the delta ring and any watch subscriptions.

use crate::registry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest single sleep, so `stop()` is honoured promptly even with a
/// multi-second window.
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// Handle to the background sampling thread; stops (and joins) on drop.
pub struct Ticker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Ticker {
    /// Spawns a thread calling [`Registry::sample_window`] every
    /// `interval` (floored at 1ms) until [`Ticker::stop`] or drop.
    pub fn start(registry: Arc<Registry>, interval: Duration) -> Ticker {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-ticker".to_string())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                while !stop_flag.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(
                            next.saturating_duration_since(now).min(SLEEP_SLICE),
                        );
                        continue;
                    }
                    registry.sample_window();
                    // Pace off the intended schedule, but never accumulate
                    // a backlog of instant windows after a long stall.
                    next += interval;
                    if next < Instant::now() {
                        next = Instant::now() + interval;
                    }
                }
            })
            .unwrap_or_else(|e| panic!("failed to spawn obs-ticker thread: {e}"));
        Ticker {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampling thread and waits for it to exit. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_samples_windows_until_stopped() {
        let registry = Arc::new(Registry::new());
        registry.counter("c").add(3);
        let mut ticker = Ticker::start(Arc::clone(&registry), Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while registry.watch_stats().windows_sampled < 3 {
            assert!(Instant::now() < deadline, "ticker never sampled");
            std::thread::sleep(Duration::from_millis(5));
        }
        ticker.stop();
        let sampled = registry.watch_stats().windows_sampled;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(registry.watch_stats().windows_sampled, sampled);
        let windows = registry.windows();
        assert_eq!(windows[0].counter_total("c"), Some(3));
    }
}
