//! First-class observability for the GBD serving stack.
//!
//! `gbd-obs` promotes ad-hoc atomics into **named, registered
//! instruments** — [`Counter`]s, polled counters, gauges, and log-bucketed
//! latency [`Histogram`]s — owned by a [`Registry`]. Every monotonic
//! series is kept two ways at once:
//!
//! * **lifetime totals**, read in one pass via [`Registry::snapshot`], and
//! * **windowed deltas**: a background [`Ticker`] closes a [`Window`]
//!   every interval (1 s by default upstream) into a fixed-size ring of
//!   the last [`DEFAULT_RING_WINDOWS`] windows, and broadcasts it to
//!   [`Registry::subscribe`]d watchers over bounded channels (slow
//!   watchers lag, they never buffer unboundedly).
//!
//! Because deltas are computed as `current - last_sampled` over monotonic
//! counters, consecutive windows telescope exactly: the sum of a series'
//! window deltas always equals its lifetime total, no matter how recording
//! threads race the sampler.
//!
//! [`render_prometheus`] and [`TextEndpoint`] expose a snapshot in the
//! Prometheus text format over a dependency-free HTTP endpoint; the
//! JSON-lines `metrics`/`watch` verbs in `gbd-serve` expose the same
//! registry over the serving protocol.
//!
//! The crate is std-only and lock-free on the record path: incrementing a
//! counter or recording a histogram sample is a handful of relaxed atomic
//! ops, cheap enough to leave on in production.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod expose;
mod instruments;
mod registry;
mod ticker;

pub use expose::{render_prometheus, TextEndpoint};
pub use instruments::{Counter, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    CancelToken, Registry, Schema, Snapshot, Subscription, WatchMsg, WatchStats, Window,
    DEFAULT_RING_WINDOWS,
};
pub use ticker::Ticker;
