#![warn(missing_docs)]
//! # sparse-groupdet
//!
//! A reproduction of *Performance Analysis of Group Based Detection for
//! Sparse Sensor Networks* (Zhang, Zhou, Son, Stankovic, Whitehouse —
//! ICDCS 2008) as a Rust workspace: the paper's analytical models, every
//! substrate they depend on, and the Monte Carlo simulator that validates
//! them.
//!
//! This umbrella crate re-exports the workspace crates under stable module
//! names and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! ## The 60-second tour
//!
//! ```
//! use sparse_groupdet::prelude::*;
//!
//! # fn main() -> Result<(), gbd_core::CoreError> {
//! // 1. Describe the system (paper defaults: 32 km field, Rs = 1 km,
//! //    Pd = 0.9, M = 20 periods, k = 5 reports).
//! let params = SystemParams::paper_defaults().with_n_sensors(120);
//!
//! // 2. Analytical detection probability via the M-S-approach (< 1 ms).
//! let analysis = ms_analyze(&params, &MsOptions::default())?;
//! let p_analytical = analysis.detection_probability(params.k());
//!
//! // 3. Validate by simulation (the paper's §4 procedure).
//! let sim = run_simulation(&SimConfig::new(params).with_trials(500).with_seed(1));
//!
//! assert!((p_analytical - sim.detection_probability).abs() < 0.1);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `gbd-core` | M=1 model, S-approach, M-S-approach, exact reference, accuracy solvers, extensions |
//! | [`engine`] | `gbd-engine` | batched evaluation engine: request/response API with cross-sweep memoization |
//! | [`sim`] | `gbd-sim` | Monte Carlo validation simulator, false-alarm studies, track filter |
//! | [`geometry`] | `gbd-geometry` | stadium DRs, lens areas, Eq (6)/(8)/(10) subareas |
//! | [`markov`] | `gbd-markov` | counting chains, transition matrices, absorbing analysis |
//! | [`stats`] | `gbd-stats` | distributions, convolutions, intervals, seeded RNG |
//! | [`field`] | `gbd-field` | deployments, spatial queries, coverage statistics |
//! | [`motion`] | `gbd-motion` | straight-line, random-walk, waypoint, varying-speed models |
//! | [`net`] | `gbd-net` | unit-disk graphs, GF/GPSR routing, latency deadline checks |

pub use gbd_core as core;
pub use gbd_engine as engine;
pub use gbd_field as field;
pub use gbd_geometry as geometry;
pub use gbd_markov as markov;
pub use gbd_motion as motion;
pub use gbd_net as net;
pub use gbd_sim as sim;
pub use gbd_stats as stats;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use gbd_core::accuracy::{required_caps, RequiredCaps};
    pub use gbd_core::exact;
    pub use gbd_core::false_alarm::{required_k, FalseAlarmModel};
    pub use gbd_core::model::{DetectionModel, ReportDistribution};
    pub use gbd_core::ms_approach::{analyze as ms_analyze, AnalysisResult, MsOptions};
    pub use gbd_core::params::SystemParams;
    pub use gbd_core::s_approach::{analyze as s_analyze, SOptions};
    pub use gbd_core::single_period;
    pub use gbd_core::time_to_detection;
    pub use gbd_core::CoreError;
    pub use gbd_engine::{
        BackendChain, BackendSpec, Engine, EvalError, EvalRequest, EvalResponse, RetryPolicy,
    };
    pub use gbd_sim::config::{BoundaryPolicy, DeploymentSpec, MotionSpec, SimConfig};
    pub use gbd_sim::runner::{run as run_simulation, SimResult};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        let p = SystemParams::paper_defaults();
        assert_eq!(p.k(), 5);
        let opts = MsOptions::default();
        assert_eq!(opts.g, 3);
    }
}
