//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal implementation of exactly the `rand` 0.8 API surface it
//! uses: the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, uniform range
//! sampling (`gen_range`), standard sampling (`gen`) and `gen_bool`.
//!
//! The implementations favor statistical quality over bit-compatibility with
//! upstream `rand`: integer ranges use the widening-multiply method (bias
//! below 2⁻⁶⁴), floats use the 53-bit mantissa construction. All workspace
//! results are a pure function of the seed, exactly as with upstream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform words.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a single `u64` via SplitMix64, then calls
    /// [`SeedableRng::from_seed`]. Distinct inputs give uncorrelated seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that support uniform sampling from a sub-range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                let span = if inclusive { span + 1 } else { span };
                assert!(span > 0, "cannot sample from an empty range");
                // Widening multiply: bias < span / 2^64, negligible.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let span = if inclusive { span + 1 } else { span };
                assert!(span > 0, "cannot sample from an empty range");
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i64).wrapping_add(draw as i64) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * u;
                // Guard against rounding landing exactly on `high` for
                // half-open ranges with tiny spans.
                if v >= high && low < high { low } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform bits for
    /// integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 over a counter: decent equidistribution for tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0u64..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
