//! Empty offline placeholder for `serde`.
//!
//! The workspace declares `serde` as an *optional* dependency behind
//! per-crate `serde` features that are never enabled in this container
//! (there is no network access to fetch the real crate). Cargo still needs
//! the package to exist to resolve the dependency graph, so this stub
//! satisfies resolution without providing any items. Enabling a workspace
//! `serde` feature against this stub is a compile error by design.
