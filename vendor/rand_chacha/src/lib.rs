//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha12 keystream generator (D. J. Bernstein's
//! ChaCha with 12 double-rounds' worth of quarter-rounds, the variant the
//! upstream crate names `ChaCha12Rng`) over the vendored [`rand`] traits.
//! The keystream is the real ChaCha function, so the statistical quality
//! matches upstream; the word-extraction order is not guaranteed to be
//! bit-identical to upstream `rand_chacha` (nothing in this workspace
//! depends on upstream's exact stream, only on determinism per seed).

pub use rand::{RngCore, SeedableRng};

/// Re-export of the seeding/core traits under the path upstream exposes
/// (`rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS_CHACHA12: usize = 12;
const ROUNDS_CHACHA8: usize = 8;
const ROUNDS_CHACHA20: usize = 20;

/// The `expand 32-byte k` constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, nonce: u64, rounds: usize) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce as u32;
    state[15] = (nonce >> 32) as u32;
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial.iter()) {
        *s = s.wrapping_add(*i);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, 0, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                };
                rng.refill();
                rng
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    ROUNDS_CHACHA8,
    "ChaCha keystream RNG with 8 rounds."
);
chacha_rng!(
    ChaCha12Rng,
    ROUNDS_CHACHA12,
    "ChaCha keystream RNG with 12 rounds — the workspace default."
);
chacha_rng!(
    ChaCha20Rng,
    ROUNDS_CHACHA20,
    "ChaCha keystream RNG with 20 rounds."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1 quarter-round test vector.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_does_not_cycle_quickly() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let first = rng.next_u64();
        let mut seen_repeat = false;
        for _ in 0..10_000 {
            if rng.next_u64() == first {
                seen_repeat = true;
            }
        }
        assert!(!seen_repeat);
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        use rand::Rng as _;
        let mut rng = ChaCha12Rng::seed_from_u64(2008);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
