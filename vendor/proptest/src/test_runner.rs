//! Run configuration and the deterministic test RNG.

use rand::SeedableRng as _;
use rand_chacha::ChaCha12Rng;

/// Per-property run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256, keeping offline CI fast.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
    /// `prop_assert!`-family failure; the property fails.
    Fail(String),
}

/// Deterministic RNG driving a property's samples, seeded from the test
/// name so failures reproduce run-to-run without a persistence file.
pub struct TestRng(ChaCha12Rng);

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable, collision-resistant enough for
        // seeding distinct streams per property.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(ChaCha12Rng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore as _;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").next_u64(), c.next_u64());
    }

    #[test]
    fn default_config_has_cases() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
