//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng as _, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// sampler over a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
