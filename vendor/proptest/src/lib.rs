//! Offline stand-in for the `proptest` crate.
//!
//! The container has no crates.io access, so this vendored crate implements
//! the subset of proptest the workspace uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `prop_map`, and `collection::vec`.
//!
//! Semantics: each property runs `ProptestConfig::cases` times against
//! deterministically seeded ChaCha12 randomness (seeded from the test
//! name, so failures reproduce across runs). There is **no shrinking** —
//! a failing case reports its inputs verbatim. Cases rejected by
//! `prop_assume!` are skipped without replacement.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "length range must be non-empty");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng as _;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that samples its arguments
/// [`ProptestConfig::cases`] times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                // Sample everything into a tuple first so the inputs can be
                // formatted before the patterns (possibly moving) bind them.
                let __vals = ($($crate::strategy::Strategy::sample(&$strat, &mut rng),)*);
                let described =
                    format!("{} = {:?}", stringify!(($($arg),*)), __vals);
                let ($($arg,)*) = __vals;
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            described
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}

/// Skips the current case (without counting it as a failure) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        #[test]
        fn prop_map_applies(n in (0u64..100).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0);
            prop_assert!(n < 200);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0usize..50, 0usize..50)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        // No #[test] meta: compiled as a plain fn, invoked below under
        // catch_unwind to check the failure report.
        fn always_fails(x in 0usize..4) {
            prop_assert!(x > 100, "x too small");
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(always_fails);
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }
}
