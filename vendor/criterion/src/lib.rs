//! Offline stand-in for the `criterion` crate.
//!
//! The container cannot fetch crates.io, so this vendored crate implements
//! the benchmarking API surface the workspace's `benches/` use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, the [`criterion_group!`]
//! / [`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples where the iteration count per sample is
//! chosen so a sample takes roughly `target_sample_time`. Median and min
//! per-iteration times are printed to stdout. There is no statistical
//! regression analysis, no HTML report and no baseline persistence — the
//! point is honest relative timings (e.g. cold vs. warm cache), not
//! criterion's full rigor.

use std::time::{Duration, Instant};

/// Opaque barrier preventing the optimizer from deleting a benchmarked
/// computation. Same contract as `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named after a function and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Benchmark named after a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    target_sample_time: Duration,
    /// Median and minimum per-iteration time, filled in by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn new(samples: usize, target_sample_time: Duration) -> Self {
        Bencher {
            samples,
            target_sample_time,
            result: None,
        }
    }

    /// Times `routine`, choosing an iteration count per sample so each
    /// sample runs for roughly the target sample time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up doubles the iteration count until the batch takes long
        // enough to time reliably; this also primes caches.
        let mut iters_per_sample: u64 = 1;
        let min_batch = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= min_batch || iters_per_sample >= 1 << 20 {
                let per_iter = elapsed.max(Duration::from_nanos(1)) / iters_per_sample as u32;
                let target = self.target_sample_time.as_nanos() as u64;
                iters_per_sample =
                    (target / per_iter.as_nanos().max(1) as u64).clamp(1, 1 << 24);
                break;
            }
            iters_per_sample *= 2;
        }

        let mut per_iter_times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_times.push(start.elapsed() / iters_per_sample as u32);
        }
        per_iter_times.sort();
        let median = per_iter_times[per_iter_times.len() / 2];
        let min = per_iter_times[0];
        self.result = Some((median, min));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    target_sample_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher::new(samples, target_sample_time);
    f(&mut bencher);
    match bencher.result {
        Some((median, min)) => println!(
            "bench: {name:<48} median {:>12}   min {:>12}",
            fmt_duration(median),
            fmt_duration(min)
        ),
        None => println!("bench: {name:<48} (no measurement: closure never called iter)"),
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.target_sample_time, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
            _criterion: self,
        }
    }

    /// Upstream runs pending reports here; nothing to finalize offline.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    target_sample_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Overrides the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_sample_time = t / self.sample_size.max(1) as u32;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.target_sample_time, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.target_sample_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here).
    pub fn finish(self) {}
}

/// Declares a set of benchmark functions as a group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut b = Bencher::new(3, Duration::from_millis(1));
        b.iter(|| black_box(2u64 + 2));
        let (median, min) = b.result.expect("iter must record");
        assert!(min <= median);
        assert!(median < Duration::from_millis(10));
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::from_parameter(240).to_string(), "240");
        assert_eq!(BenchmarkId::new("conv", 8).to_string(), "conv/8");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| black_box(1u32).wrapping_add(1)));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.finish();
    }
}
