//! End-to-end tests of the `gbd-serve` network layer.
//!
//! The headline scenarios are the acceptance proofs of the serving work:
//!
//! 1. 8 concurrent clients × 16 requests each over TCP produce
//!    **bit-identical** results to the same 128 requests evaluated
//!    directly via [`Engine::evaluate_batch`], with server stats showing a
//!    mean coalesced batch size > 1 and zero shed requests.
//! 2. Overflowing the admission queue yields structured `overloaded`
//!    errors while the server keeps serving.
//!
//! Around them: protocol fuzzing (garbage bytes, truncated and huge
//! lines — connection and server survive), a property test correlating
//! ids across K clients × R pipelined requests, and chaos injection
//! proving a worker panic fails only its own request.

use gbd_core::params::SystemParams;
use gbd_engine::{BackendSpec, ChaosPlan, Engine, EvalRequest};
use gbd_serve::{Json, ServeConfig, Server, ServerHandle};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Once};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(config: ServeConfig, engine: Engine) -> TestServer {
    let server = Server::bind(config, Arc::new(engine)).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn stop(self) {
        self.handle.shutdown();
        self.thread
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let read_half = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send raw");
        self.writer.flush().expect("flush raw");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim()).expect("response is valid JSON")
    }
}

fn error_code(response: &Json) -> Option<&str> {
    response.get("error")?.get("code")?.as_str()
}

/// Injected panics are expected; keep their backtrace spam out of the test
/// output while leaving real panics loud.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|msg| msg.starts_with("chaos:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Acceptance: micro-batching end to end
// ---------------------------------------------------------------------------

/// The deterministic request mix shared by the wire and direct paths:
/// global sequence number → parameters. Cycles seven sensor counts so the
/// batch exercises both cache hits and misses.
fn mix_params(seq: usize) -> SystemParams {
    SystemParams::paper_defaults().with_n_sensors(60 + 30 * (seq % 7))
}

#[test]
fn eight_clients_match_direct_evaluate_batch_bit_for_bit() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 16;
    // A generous flush window, so the 128 pipelined requests pile into
    // size-triggered batches rather than many timer-triggered singletons.
    let server = start(
        ServeConfig {
            batch_max: 32,
            flush_interval: Duration::from_millis(100),
            ..ServeConfig::default()
        },
        Engine::new(),
    );
    let addr = server.addr;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Pipeline all 16 requests, then collect 16 in-order
                // responses.
                for i in 0..PER_CLIENT {
                    let seq = c * PER_CLIENT + i;
                    let n = mix_params(seq).n_sensors();
                    client.send(&format!(
                        r#"{{"id":{i},"verb":"eval","params":{{"n":{n}}}}}"#
                    ));
                }
                (0..PER_CLIENT)
                    .map(|i| {
                        let response = client.recv();
                        assert_eq!(
                            response.get("id").and_then(Json::as_u64),
                            Some(i as u64),
                            "response out of order"
                        );
                        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                        let detection = response.get("detection").unwrap().as_arr().unwrap();
                        let pair = detection[0].as_arr().unwrap();
                        (pair[0].as_usize().unwrap(), pair[1].as_f64().unwrap())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let wire: Vec<Vec<(usize, f64)>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // Server-side acceptance counters: mean batch size > 1, zero shed.
    let mut control = Client::connect(addr);
    control.send(r#"{"id":0,"verb":"stats"}"#);
    let stats = control.recv();
    let stats = stats.get("stats").unwrap();
    let factor = stats
        .get("coalescing_factor")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(factor > 1.0, "no coalescing happened: factor = {factor}");
    assert_eq!(stats.get("shed").and_then(Json::as_u64), Some(0));
    assert_eq!(
        stats.get("evaluated").and_then(Json::as_u64),
        Some((CLIENTS * PER_CLIENT) as u64)
    );
    server.stop();

    // The same 128 requests straight into a fresh engine's batch API.
    let requests: Vec<EvalRequest> = (0..CLIENTS * PER_CLIENT)
        .map(|seq| EvalRequest::new(mix_params(seq), BackendSpec::ms_default()))
        .collect();
    let direct = Engine::new().evaluate_batch(&requests);
    for (c, client_wire) in wire.iter().enumerate() {
        for (i, &(wire_k, wire_p)) in client_wire.iter().enumerate() {
            let seq = c * PER_CLIENT + i;
            let expect = &direct[seq].detection[0];
            assert_eq!(wire_k, expect.0);
            assert_eq!(
                wire_p.to_bits(),
                expect.1.to_bits(),
                "request {seq}: wire {} != direct {}",
                wire_p,
                expect.1
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptance: admission control under overflow
// ---------------------------------------------------------------------------

#[test]
fn queue_overflow_sheds_with_structured_errors_and_keeps_serving() {
    // Tiny queue, no size trigger, and a flush interval long enough that
    // nothing drains while we overfill.
    let server = start(
        ServeConfig {
            batch_max: 1000,
            flush_interval: Duration::from_secs(30),
            queue_depth: 2,
            ..ServeConfig::default()
        },
        Engine::new(),
    );

    let mut client = Client::connect(server.addr);
    for id in 0..20 {
        client.send(&format!(
            r#"{{"id":{id},"verb":"eval","params":{{"n":60}}}}"#
        ));
    }
    // The server keeps serving while 18 requests sit shed and 2 sit
    // queued: a second connection gets an immediate pong and sees the
    // shed count in stats.
    let mut probe = Client::connect(server.addr);
    probe.send(r#"{"id":1,"verb":"ping"}"#);
    assert_eq!(probe.recv().get("pong").and_then(Json::as_bool), Some(true));
    // The 20 pipelined sends race the server's reader thread, so poll until
    // the shed count converges rather than asserting on the first scrape.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let shed = loop {
        probe.send(r#"{"id":2,"verb":"stats"}"#);
        let shed = probe
            .recv()
            .get("stats")
            .and_then(|s| s.get("shed"))
            .and_then(Json::as_u64);
        if shed == Some(18) || std::time::Instant::now() >= deadline {
            break shed;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(shed, Some(18));

    // Drain: the two admitted requests must still complete.
    server.handle.shutdown();
    for id in 0..20u64 {
        let response = client.recv();
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
        if id < 2 {
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "admitted request {id} failed"
            );
        } else {
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(error_code(&response), Some("overloaded"));
        }
    }
    server.thread.join().expect("join").expect("run");
}

// ---------------------------------------------------------------------------
// Protocol hygiene: garbage in, structured errors out, connection alive
// ---------------------------------------------------------------------------

#[test]
fn garbage_input_gets_structured_errors_and_never_kills_the_connection() {
    let server = start(
        ServeConfig {
            max_line_bytes: 512,
            ..ServeConfig::default()
        },
        Engine::new(),
    );
    let mut client = Client::connect(server.addr);

    // (line to send, expected error code) — one response per line.
    let cases: Vec<(Vec<u8>, &str)> = vec![
        (b"not json at all".to_vec(), "bad_request"),
        (b"{\"id\":}".to_vec(), "bad_request"),
        (b"42".to_vec(), "bad_request"),
        (b"{\"id\":1}".to_vec(), "bad_request"),
        (b"{\"id\":1,\"verb\":\"warp\"}".to_vec(), "bad_request"),
        (
            b"{\"id\":1,\"verb\":\"eval\",\"params\":{\"pd\":7}}".to_vec(),
            "bad_request",
        ),
        (
            b"{\"id\":1,\"verb\":\"eval\",\"params\":[]}".to_vec(),
            "bad_request",
        ),
        (
            b"{\"id\":1,\"verb\":\"eval\",\"params\":{\"n\":60,\"n\":70}}".to_vec(),
            "bad_request",
        ),
        // Raw binary garbage (invalid UTF-8).
        (vec![0x00, 0xff, 0xfe, 0x80, 0x9b], "bad_request"),
        // A huge line: valid JSON, but over the 512-byte cap.
        (
            format!("{{\"id\":1,\"pad\":\"{}\"}}", "x".repeat(2048)).into_bytes(),
            "line_too_long",
        ),
        // Deeply nested JSON (parser depth cap).
        (
            format!("{}1{}", "[".repeat(80), "]".repeat(80)).into_bytes(),
            "bad_request",
        ),
    ];
    for (bytes, expected_code) in &cases {
        client.send_raw(bytes);
        client.send_raw(b"\n");
        let response = client.recv();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            error_code(&response),
            Some(*expected_code),
            "for input {:?}",
            String::from_utf8_lossy(bytes)
        );
    }

    // Same connection still evaluates real work afterwards.
    client.send(r#"{"id":77,"verb":"eval","params":{"n":60}}"#);
    let response = client.recv();
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(77));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    // A truncated line (no newline, then EOF) on a second connection gets
    // an error without disturbing the server.
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    stream
        .write_all(b"{\"id\":5,\"verb\":\"ev")
        .expect("send partial");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut line = String::new();
    BufReader::new(&stream)
        .read_line(&mut line)
        .expect("read error line");
    let response = Json::parse(line.trim()).expect("valid JSON");
    assert_eq!(error_code(&response), Some("bad_request"));

    // And the server still accepts fresh connections.
    let mut after = Client::connect(server.addr);
    after.send(r#"{"id":9,"verb":"ping"}"#);
    assert_eq!(after.recv().get("pong").and_then(Json::as_bool), Some(true));
    server.stop();
}

#[test]
fn per_connection_request_limit_is_enforced() {
    let server = start(
        ServeConfig {
            max_requests_per_conn: 2,
            flush_interval: Duration::from_millis(1),
            ..ServeConfig::default()
        },
        Engine::new(),
    );
    let mut client = Client::connect(server.addr);
    for id in 0..3 {
        client.send(&format!(
            r#"{{"id":{id},"verb":"eval","params":{{"n":60}}}}"#
        ));
    }
    for id in 0..3u64 {
        let response = client.recv();
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
        if id < 2 {
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        } else {
            assert_eq!(error_code(&response), Some("conn_limit"));
        }
    }
    // Control verbs are not counted against the eval limit.
    client.send(r#"{"id":8,"verb":"ping"}"#);
    assert_eq!(
        client.recv().get("pong").and_then(Json::as_bool),
        Some(true)
    );
    server.stop();
}

// ---------------------------------------------------------------------------
// Chaos: a worker panic fails only its own request
// ---------------------------------------------------------------------------

#[test]
fn injected_worker_panic_fails_only_the_affected_request() {
    silence_injected_panics();
    // One injected panic per flushed batch; force all 8 requests into a
    // single batch so exactly one is affected.
    let server = start(
        ServeConfig {
            batch_max: 8,
            flush_interval: Duration::from_millis(200),
            ..ServeConfig::default()
        },
        Engine::new().with_chaos(ChaosPlan::new(2008).with_worker_panics(1)),
    );
    let mut client = Client::connect(server.addr);
    for id in 0..8 {
        client.send(&format!(
            r#"{{"id":{id},"verb":"eval","params":{{"n":{}}}}}"#,
            60 + 30 * id
        ));
    }
    let mut panicked = 0;
    let mut succeeded = 0;
    for id in 0..8u64 {
        let response = client.recv();
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
        match error_code(&response) {
            Some("worker_panicked") => panicked += 1,
            None => succeeded += 1,
            other => panic!("unexpected error code {other:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly one request should absorb the panic");
    assert_eq!(succeeded, 7);
    // Neither the batch, the connection, nor the server died with it.
    client.send(r#"{"id":99,"verb":"ping"}"#);
    assert_eq!(
        client.recv().get("pong").and_then(Json::as_bool),
        Some(true)
    );
    server.stop();
}

// ---------------------------------------------------------------------------
// Shutdown paths
// ---------------------------------------------------------------------------

#[test]
fn shutdown_verb_drains_and_stops_the_server() {
    let server = start(
        ServeConfig {
            flush_interval: Duration::from_millis(500),
            ..ServeConfig::default()
        },
        Engine::new(),
    );
    let mut client = Client::connect(server.addr);
    // An eval queued right before shutdown still gets its answer.
    client.send(r#"{"id":1,"verb":"eval","params":{"n":60}}"#);
    client.send(r#"{"id":2,"verb":"shutdown"}"#);
    let first = client.recv();
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    let ack = client.recv();
    assert_eq!(ack.get("shutting_down").and_then(Json::as_bool), Some(true));
    server
        .thread
        .join()
        .expect("server thread")
        .expect("clean exit");
}

// ---------------------------------------------------------------------------
// Observability: metrics verb, deprecated aliases, watch, exposition
// ---------------------------------------------------------------------------

#[test]
fn metrics_verb_selects_sections_and_aliases_stay_byte_compatible() {
    let server = start(
        ServeConfig {
            flush_interval: Duration::from_millis(1),
            ..ServeConfig::default()
        },
        Engine::new(),
    );
    let mut client = Client::connect(server.addr);
    client.send(r#"{"id":1,"verb":"eval","params":{"n":60}}"#);
    assert_eq!(client.recv().get("ok").and_then(Json::as_bool), Some(true));

    // Full payload: versioned, all four sections in canonical order.
    client.send(r#"{"id":2,"verb":"metrics"}"#);
    let full = client.recv();
    assert_eq!(full.get("schema_version").and_then(Json::as_u64), Some(1));
    assert!(full.get("deprecated").is_none());
    let body = full.get("metrics").unwrap();
    let keys: Vec<&str> = match body {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("metrics body is not an object: {other:?}"),
    };
    assert_eq!(keys, ["server", "cache", "store", "histograms"]);
    assert_eq!(
        body.get("server")
            .and_then(|s| s.get("evaluated"))
            .and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        body.get("server")
            .and_then(|s| s.get("verbs"))
            .and_then(|v| v.get("metrics"))
            .and_then(Json::as_u64),
        Some(1)
    );

    // Section selection returns exactly the asked-for sections.
    client.send(r#"{"id":3,"verb":"metrics","sections":["histograms","cache"]}"#);
    let subset = client.recv();
    let body = subset.get("metrics").unwrap();
    let keys: Vec<&str> = match body {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("metrics body is not an object: {other:?}"),
    };
    assert_eq!(
        keys,
        ["cache", "histograms"],
        "canonical order, not request order"
    );
    // The full histograms carry sums; the empty backend histograms render
    // max as null (the old renderer printed a misleading 0).
    let sim = body
        .get("histograms")
        .and_then(|h| h.get("backends"))
        .and_then(|b| b.get("sim"))
        .unwrap();
    assert_eq!(sim.get("count").and_then(Json::as_u64), Some(0));
    assert!(matches!(sim.get("max"), Some(Json::Null)));

    client.send(r#"{"id":4,"verb":"metrics","sections":["warp"]}"#);
    let bad = client.recv();
    assert_eq!(error_code(&bad), Some("bad_request"));

    // The deprecated `stats` alias answers the pre-redesign payload key
    // for key, with only the top-level `deprecated` flag added.
    client.send(r#"{"id":5,"verb":"stats"}"#);
    let stats = client.recv();
    assert_eq!(stats.get("deprecated").and_then(Json::as_bool), Some(true));
    let legacy = stats.get("stats").unwrap();
    let keys: Vec<&str> = match legacy {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("stats body is not an object: {other:?}"),
    };
    assert_eq!(
        keys,
        [
            "queue_depth",
            "connections_total",
            "connections_active",
            "admitted",
            "evaluated",
            "shed",
            "rejected",
            "batches_flushed",
            "flushes_by_size",
            "flushes_by_timer",
            "coalescing_factor",
            "cache",
            "latency_us",
            "queue_wait_us",
            "compute_us",
        ]
    );
    assert_eq!(legacy.get("evaluated").and_then(Json::as_u64), Some(1));

    // Same for the deprecated `store` alias (no store attached here).
    client.send(r#"{"id":6,"verb":"store"}"#);
    let store = client.recv();
    assert_eq!(store.get("deprecated").and_then(Json::as_bool), Some(true));
    assert_eq!(
        store
            .get("store")
            .and_then(|s| s.get("attached"))
            .and_then(Json::as_bool),
        Some(false)
    );
    server.stop();
}

#[test]
fn watch_streams_bounded_windows_and_unwatch_ends_open_streams() {
    let server = start(
        ServeConfig {
            flush_interval: Duration::from_millis(1),
            obs_window: Duration::from_millis(10),
            ..ServeConfig::default()
        },
        Engine::new(),
    );
    let mut client = Client::connect(server.addr);
    client.send(r#"{"id":1,"verb":"eval","params":{"n":60}}"#);
    assert_eq!(client.recv().get("ok").and_then(Json::as_bool), Some(true));

    // Bounded watch with replay: ack, exactly three windows with strictly
    // increasing seq starting at 1 (replay begins at the ring's origin),
    // then the terminator. The eval above must appear in the deltas.
    client.send(r#"{"id":2,"verb":"watch","windows":3,"replay":true}"#);
    let ack = client.recv();
    assert_eq!(ack.get("watching").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("windows").and_then(Json::as_u64), Some(3));
    let mut evaluated_deltas = 0;
    let mut evaluated_total = 0;
    let mut last_seq = 0;
    for i in 0..3 {
        let line = client.recv();
        let window = line.get("window").expect("window line");
        let seq = window.get("seq").and_then(Json::as_u64).unwrap();
        if i == 0 {
            assert_eq!(seq, 1, "replay must start at the first ring window");
        } else {
            assert_eq!(seq, last_seq + 1);
        }
        last_seq = seq;
        let evaluated = window
            .get("counters")
            .and_then(|c| c.get("evaluated"))
            .expect("evaluated counter in window");
        evaluated_deltas += evaluated.get("delta").and_then(Json::as_u64).unwrap();
        evaluated_total = evaluated.get("total").and_then(Json::as_u64).unwrap();
    }
    // Deltas from the ring origin telescope to the lifetime total, and
    // every window here closed after the eval above completed.
    assert_eq!(evaluated_deltas, evaluated_total);
    assert_eq!(evaluated_total, 1);
    let end = client.recv();
    assert_eq!(end.get("watch_end").and_then(Json::as_bool), Some(true));
    assert_eq!(end.get("windows").and_then(Json::as_u64), Some(3));

    // Unbounded watch: read a couple of live windows, then `unwatch` from
    // the same connection must end the stream (terminator) before its ack.
    client.send(r#"{"id":3,"verb":"watch"}"#);
    let ack = client.recv();
    assert_eq!(ack.get("watching").and_then(Json::as_bool), Some(true));
    for _ in 0..2 {
        let line = client.recv();
        assert!(line.get("window").is_some(), "expected a window line");
    }
    client.send(r#"{"id":4,"verb":"unwatch"}"#);
    loop {
        let line = client.recv();
        if line.get("watch_end").and_then(Json::as_bool) == Some(true) {
            break;
        }
        assert!(line.get("window").is_some(), "expected window or watch_end");
    }
    let ack = client.recv();
    assert_eq!(ack.get("id").and_then(Json::as_u64), Some(4));
    assert_eq!(ack.get("unwatched").and_then(Json::as_u64), Some(1));

    // The connection still serves ordinary work afterwards.
    client.send(r#"{"id":5,"verb":"ping"}"#);
    assert_eq!(
        client.recv().get("pong").and_then(Json::as_bool),
        Some(true)
    );

    // A connection with an open unbounded watch must not block drain.
    let mut dangling = Client::connect(server.addr);
    dangling.send(r#"{"id":1,"verb":"watch","replay":false}"#);
    let ack = dangling.recv();
    assert_eq!(ack.get("watching").and_then(Json::as_bool), Some(true));
    server.stop();
}

#[test]
fn metrics_exposition_endpoint_serves_prometheus_text() {
    let server = Server::bind(
        ServeConfig {
            flush_interval: Duration::from_millis(1),
            metrics_addr: Some("127.0.0.1:0".to_string()),
            obs_window: Duration::from_millis(10),
            ..ServeConfig::default()
        },
        Arc::new(Engine::new()),
    )
    .expect("bind");
    let addr = server.local_addr();
    let scrape_addr = server.metrics_local_addr().expect("exposition bound");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr);
    client.send(r#"{"id":1,"verb":"eval","params":{"n":60}}"#);
    assert_eq!(client.recv().get("ok").and_then(Json::as_bool), Some(true));

    let scrape = |path: &str| -> String {
        let mut stream = TcpStream::connect(scrape_addr).expect("connect scrape");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )
            .expect("send request");
        let mut response = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut response).expect("read response");
        response
    };

    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.1 200"), "got: {response}");
    assert!(response.contains("text/plain; version=0.0.4"));
    assert!(response.contains("# TYPE gbd_evaluated_total counter"));
    assert!(response.contains("gbd_evaluated_total 1"));
    assert!(response.contains("gbd_latency_us_bucket"));
    assert!(response.contains("gbd_latency_us_sum"));
    // Empty histograms export buckets but no percentile gauges.
    assert!(response.contains("gbd_backend_sim_latency_us_count 0"));
    assert!(!response.contains("gbd_backend_sim_latency_us_p50"));

    let missing = scrape("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");

    handle.shutdown();
    thread.join().expect("server thread").expect("clean exit");
}

// ---------------------------------------------------------------------------
// Property: id correlation across K clients × R pipelined requests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn responses_reach_the_right_client_in_order(
        clients in 1usize..=4,
        requests in 1usize..=8,
        batch_max in 1usize..=16,
    ) {
        let server = start(
            ServeConfig {
                batch_max,
                flush_interval: Duration::from_millis(2),
                ..ServeConfig::default()
            },
            // The cheap closed-form backend keeps 5 cases × 32 requests
            // fast; correlation, not numerics, is under test here.
            Engine::new(),
        );
        let addr = server.addr;
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr);
                    // Ids unique per (client, request) so cross-wiring
                    // any two connections would be visible.
                    for i in 0..requests {
                        let id = (c * 1000 + i) as u64;
                        client.send(&format!(
                            r#"{{"id":{id},"verb":"eval","params":{{"n":{}}},"backend":{{"kind":"poisson"}}}}"#,
                            60 + 30 * ((c + i) % 5),
                        ));
                    }
                    (0..requests)
                        .map(|i| {
                            let response = client.recv();
                            (
                                i,
                                response.get("id").and_then(Json::as_u64),
                                response.get("ok").and_then(Json::as_bool),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (c, worker) in workers.into_iter().enumerate() {
            let got = worker.join().expect("client thread");
            for (i, id, ok) in got {
                prop_assert_eq!(id, Some((c * 1000 + i) as u64));
                prop_assert_eq!(ok, Some(true));
            }
        }
        server.stop();
    }
}
