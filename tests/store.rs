//! End-to-end tests of the persistent result store (`gbd-store`) wired
//! through the engine and the serving layer.
//!
//! The headline scenarios are the acceptance proofs of the storage work:
//!
//! 1. A fig8 sweep served over TCP, a graceful drain (which snapshots the
//!    store), a restart against the same store, and a rerun of the sweep:
//!    every response is **bit-identical** and the warm server recomputes
//!    **zero** M-S stages — the store hit count equals the request count.
//! 2. A corrupted log (byte flipped mid-record) degrades the restart to a
//!    *partial* warm start: fewer records load, torn bytes are discarded,
//!    and every served value is still bit-identical to the original —
//!    missing entries are recomputed, never guessed.
//!
//! Around them: torn-tail truncation through the engine, and identity-tag
//! refusal so a store written by a different codec can never shadow
//! results.

use gbd_engine::{BackendSpec, Engine, EvalRequest};
use gbd_serve::{Json, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn temp_store(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gbd-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The fig8 sensor-count grid the sweeps below run over.
const N_VALUES: [usize; 7] = [60, 90, 120, 150, 180, 210, 240];

fn fig8_requests() -> Vec<EvalRequest> {
    N_VALUES
        .iter()
        .map(|&n| {
            EvalRequest::new(
                gbd_core::params::SystemParams::paper_defaults().with_n_sensors(n),
                BackendSpec::ms_default(),
            )
        })
        .collect()
}

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(engine: Engine) -> TestServer {
    let server =
        Server::bind(ServeConfig::default(), Arc::new(engine)).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    /// Graceful drain: the same path the `shutdown` verb takes, which
    /// snapshots the store before the listener exits.
    fn stop(self) {
        self.handle.shutdown();
        self.thread
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let read_half = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(line.trim()).expect("response is valid JSON")
    }
}

/// One sweep response as seen on the wire: the rendered `detection` array
/// (exact text — equality is bit-identity of every float) plus the
/// per-request cache counters.
struct WireRow {
    detection: String,
    hits: u64,
    misses: u64,
}

/// Runs the fig8 sweep over TCP against `addr`, in request order.
fn sweep_over_tcp(addr: SocketAddr) -> Vec<WireRow> {
    let mut client = Client::connect(addr);
    for (id, &n) in N_VALUES.iter().enumerate() {
        client.send(&format!(
            r#"{{"id":{id},"verb":"eval","params":{{"n":{n}}}}}"#
        ));
    }
    (0..N_VALUES.len())
        .map(|id| {
            let response = client.recv();
            assert_eq!(response.get("id").and_then(Json::as_u64), Some(id as u64));
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
            let cache = response.get("cache").expect("cache counters");
            WireRow {
                detection: response.get("detection").expect("detection").render(),
                hits: cache.get("hits").and_then(Json::as_u64).expect("hits"),
                misses: cache.get("misses").and_then(Json::as_u64).expect("misses"),
            }
        })
        .collect()
}

/// Reads the `store` verb from a running server.
fn store_status(addr: SocketAddr) -> Json {
    let mut client = Client::connect(addr);
    client.send(r#"{"id":0,"verb":"store"}"#);
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    response.get("store").expect("store object").clone()
}

fn store_field(status: &Json, key: &str) -> u64 {
    status
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("store status missing `{key}`: {}", status.render()))
}

// ---------------------------------------------------------------------------
// Acceptance: drain, restart, rerun — bit-identical, zero recomputation
// ---------------------------------------------------------------------------

#[test]
fn serve_drain_restart_rerun_is_bit_identical_with_zero_recomputed_stages() {
    let path = temp_store("serve-roundtrip.gbdstore");

    // Cold server: every stage is computed and spilled.
    let cold_server = start(Engine::new().with_store(&path).expect("open fresh store"));
    let cold = sweep_over_tcp(cold_server.addr);
    let cold_status = store_status(cold_server.addr);
    assert_eq!(
        cold_status.get("attached").and_then(Json::as_bool),
        Some(true)
    );
    assert!(store_field(&cold_status, "spills") > 0, "nothing spilled");
    assert_eq!(store_field(&cold_status, "loads"), 0);
    cold_server.stop(); // graceful drain → snapshot

    // Warm server over the same store.
    let warm_server = start(Engine::new().with_store(&path).expect("reopen store"));
    let warm = sweep_over_tcp(warm_server.addr);
    let warm_status = store_status(warm_server.addr);
    warm_server.stop();

    // Every response bit-identical; zero recomputed M-S stages; the
    // result-layer hit count equals the request count.
    assert_eq!(cold.len(), warm.len());
    let mut warm_hits = 0;
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(
            c.detection, w.detection,
            "request {i}: warm response diverged from cold"
        );
        assert_eq!(w.misses, 0, "request {i}: warm server recomputed a stage");
        warm_hits += w.hits;
    }
    assert_eq!(
        warm_hits,
        N_VALUES.len() as u64,
        "store hit count must equal the request count"
    );
    assert!(
        store_field(&warm_status, "loads") > 0,
        "warm boot loaded nothing: {}",
        warm_status.render()
    );
    // The drain compacted: duplicates (if any) dropped, log intact.
    assert_eq!(store_field(&warm_status, "torn_bytes_discarded"), 0);
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn store_verb_reports_detached_when_engine_runs_memory_only() {
    let server = start(Engine::new());
    let status = store_status(server.addr);
    assert_eq!(status.get("attached").and_then(Json::as_bool), Some(false));
    server.stop();
}

// ---------------------------------------------------------------------------
// Acceptance: corrupted log → partial warm start, never a wrong result
// ---------------------------------------------------------------------------

#[test]
fn corrupted_log_degrades_to_partial_warm_start_without_wrong_results() {
    let path = temp_store("corrupt.gbdstore");

    // Ground truth: a cold server's wire responses, drained to the store.
    let cold_server = start(Engine::new().with_store(&path).expect("open fresh store"));
    let cold = sweep_over_tcp(cold_server.addr);
    cold_server.stop();

    // Flip one byte in the middle of the log: the record containing it
    // fails its CRC, and recovery truncates there.
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .expect("open log")
        .read_to_end(&mut bytes)
        .expect("read log");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&path, &bytes).expect("write corrupted log");

    // Restart against the damaged store: a partial warm start.
    let warm_server = start(
        Engine::new()
            .with_store(&path)
            .expect("recovery must tolerate mid-log corruption"),
    );
    let warm = sweep_over_tcp(warm_server.addr);
    let status = store_status(warm_server.addr);
    warm_server.stop();

    assert!(
        store_field(&status, "torn_bytes_discarded") > 0,
        "corruption went unnoticed: {}",
        status.render()
    );
    // Partial: something loaded, but less than the full log held.
    let loads = store_field(&status, "loads");
    assert!(loads > 0, "valid prefix was lost entirely");
    assert!(
        loads < store_field(&status, "spills") + loads,
        "nothing was recomputed, yet half the log was destroyed"
    );
    // The real acceptance bar: no wrong result was ever served.
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(
            c.detection, w.detection,
            "request {i}: corrupted-store restart served a wrong value"
        );
    }
    std::fs::remove_file(&path).expect("cleanup");
}

// ---------------------------------------------------------------------------
// Torn tail: a crash mid-append loses at most the torn record
// ---------------------------------------------------------------------------

#[test]
fn torn_tail_recovers_to_longest_valid_prefix_through_the_engine() {
    let path = temp_store("torn.gbdstore");
    let requests = fig8_requests();

    let cold_engine = Engine::new().with_store(&path).expect("open fresh store");
    let cold = cold_engine.evaluate_batch(&requests);
    cold_engine
        .sync_store()
        .expect("store attached")
        .expect("sync");
    drop(cold_engine);

    // Simulate a crash mid-append: chop the file mid-record.
    let len = std::fs::metadata(&path).expect("stat").len();
    let torn_len = len - len / 3;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open log")
        .set_len(torn_len)
        .expect("tear the tail");

    let warm_engine = Engine::new()
        .with_store(&path)
        .expect("recovery must tolerate a torn tail");
    let stats = warm_engine.store_stats().expect("store attached");
    assert!(
        stats.loaded_records > 0,
        "the valid prefix must survive: {stats:?}"
    );
    let warm = warm_engine.evaluate_batch(&requests);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.outcome, w.outcome, "torn-tail recovery changed a value");
        assert_eq!(c.detection, w.detection);
    }
    std::fs::remove_file(&path).expect("cleanup");
}

// ---------------------------------------------------------------------------
// Torn tail, exhaustively: every byte offset of the final frame
// ---------------------------------------------------------------------------

/// Crash safety is a per-byte property: a power cut can stop the file at
/// *any* offset inside the frame being written — mid-length, mid-CRC,
/// mid-payload. This sweep truncates the log at every byte offset of the
/// final frame and requires, for each one, that recovery (a) succeeds,
/// (b) keeps exactly the records before the torn frame, byte-identical,
/// (c) never resurrects any part of the torn record, and (d) accounts
/// for every discarded byte in `torn_bytes_discarded`.
#[test]
fn truncation_at_every_byte_of_the_final_frame_recovers_the_prefix() {
    let path = temp_store("sweep.gbdstore");
    const TAG: &[u8] = b"sweep-test-v1";

    let store = gbd_store::Store::open(&path, TAG).expect("create store");
    for i in 0..4u8 {
        store
            .append(i, format!("key-{i}").as_bytes(), &[i; 9])
            .expect("append");
    }
    store.sync().expect("sync prefix");
    let prefix_len = std::fs::metadata(&path).expect("stat").len();
    store
        .append(9, b"key-final", b"final-value")
        .expect("append final");
    store.sync().expect("sync final");
    drop(store);
    let original = std::fs::read(&path).expect("read log");
    let full_len = original.len() as u64;
    assert!(prefix_len < full_len, "final frame must occupy bytes");

    for torn_len in prefix_len..full_len {
        std::fs::write(&path, &original[..torn_len as usize]).expect("write torn copy");
        let reopened = gbd_store::Store::open(&path, TAG).unwrap_or_else(|e| {
            panic!("torn at byte {torn_len}/{full_len}: recovery failed: {e}")
        });
        let stats = reopened.stats();
        assert_eq!(
            stats.loaded_records, 4,
            "torn at byte {torn_len}/{full_len}: wrong survivor count: {stats:?}"
        );
        assert_eq!(
            stats.torn_bytes_discarded,
            torn_len - prefix_len,
            "torn at byte {torn_len}/{full_len}: discarded bytes unaccounted: {stats:?}"
        );
        for i in 0..4u8 {
            assert_eq!(
                reopened.get(i, format!("key-{i}").as_bytes()).as_deref(),
                Some(&[i; 9][..]),
                "torn at byte {torn_len}: record {i} did not survive intact"
            );
        }
        assert!(
            reopened.get(9, b"key-final").is_none(),
            "torn at byte {torn_len}: a partial frame must never decode"
        );
    }

    // The untorn log, for contrast, loads everything.
    std::fs::write(&path, &original).expect("restore intact log");
    let intact = gbd_store::Store::open(&path, TAG).expect("reopen intact");
    assert_eq!(intact.stats().loaded_records, 5);
    assert_eq!(intact.stats().torn_bytes_discarded, 0);
    assert_eq!(
        intact.get(9, b"key-final").as_deref(),
        Some(&b"final-value"[..])
    );
    std::fs::remove_file(&path).expect("cleanup");
}

// ---------------------------------------------------------------------------
// Identity: a foreign store never shadows results
// ---------------------------------------------------------------------------

#[test]
fn engine_refuses_a_store_written_under_a_different_identity_tag() {
    let path = temp_store("foreign.gbdstore");
    {
        let foreign = gbd_store::Store::open(&path, b"some-other-codec-v9")
            .expect("create foreign store");
        foreign.append(1, b"key", b"value").expect("append");
        foreign.sync().expect("sync");
    }
    let err = match Engine::new().with_store(&path) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("engine opened a store with a foreign identity tag"),
    };
    assert!(
        err.contains("identity"),
        "error should name the identity mismatch: {err}"
    );
    std::fs::remove_file(&path).expect("cleanup");
}
