//! Distribution-level validation: the simulator's empirical report-count
//! histogram against the exact analytical pmf, via a chi-square
//! goodness-of-fit test. Far sharper than comparing a single tail
//! probability: every bin of the distribution has to be right.

use gbd_core::exact;
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;
use gbd_stats::chisq::chi_square_gof;

const TRIALS: u64 = 6_000;

/// Simulated histogram of total true-report counts, capped at `cap`.
fn simulated_histogram(params: SystemParams, cap: usize, seed: u64) -> Vec<u64> {
    let config = SimConfig::new(params).with_trials(TRIALS).with_seed(seed);
    let mut hist = vec![0u64; cap + 1];
    for trial in 0..TRIALS {
        let out = run_trial(&config, trial);
        hist[out.true_reports.min(cap)] += 1;
    }
    hist
}

#[test]
fn report_count_distribution_matches_exact_model() {
    // Two operating points with very different shapes.
    for (n, v, seed) in [(120usize, 10.0, 5u64), (240, 4.0, 6)] {
        let params = SystemParams::paper_defaults()
            .with_n_sensors(n)
            .with_speed(v);
        let cap = 60;
        let expected = exact::report_distribution(&params, cap);
        let observed = simulated_histogram(params, cap, seed);
        let probs: Vec<f64> = (0..=cap).map(|m| expected.pmf(m)).collect();
        let test = chi_square_gof(&observed, &probs, 5.0).expect("valid gof inputs");
        assert!(
            test.p_value > 0.001,
            "N={n} V={v}: chi2={:.1} dof={} p={:.5}",
            test.statistic,
            test.dof,
            test.p_value
        );
    }
}

#[test]
fn gof_detects_a_wrong_model() {
    // Sanity that the test has power: comparing the simulation against the
    // exact pmf of a *different* speed must fail decisively.
    let params = SystemParams::paper_defaults()
        .with_n_sensors(120)
        .with_speed(10.0);
    let wrong = SystemParams::paper_defaults()
        .with_n_sensors(120)
        .with_speed(4.0);
    let cap = 60;
    let expected = exact::report_distribution(&wrong, cap);
    let observed = simulated_histogram(params, cap, 5);
    let probs: Vec<f64> = (0..=cap).map(|m| expected.pmf(m)).collect();
    let test = chi_square_gof(&observed, &probs, 5.0).expect("valid gof inputs");
    assert!(test.p_value < 1e-10, "wrong model not rejected: {test:?}");
}

#[test]
fn random_walk_histogram_close_but_distinguishable_at_scale() {
    // Figure 9(c)'s mechanism at distribution level: a random-walk target
    // produces a report distribution close to the straight-line model —
    // the detection probabilities differ by ~2% — but the full histogram
    // test at 6 000 trials can already see the difference at V = 4, where
    // heavy DR overlap makes the walk's ARegion measurably smaller.
    let params = SystemParams::paper_defaults()
        .with_n_sensors(240)
        .with_speed(4.0);
    let cap = 60;
    let expected = exact::report_distribution(&params, cap);
    let probs: Vec<f64> = (0..=cap).map(|m| expected.pmf(m)).collect();
    let config = SimConfig::new(params)
        .with_trials(TRIALS)
        .with_seed(7)
        .with_paper_random_walk();
    let mut hist = vec![0u64; cap + 1];
    for trial in 0..TRIALS {
        let out = run_trial(&config, trial);
        hist[out.true_reports.min(cap)] += 1;
    }
    let test = chi_square_gof(&hist, &probs, 5.0).expect("valid gof inputs");
    // Close in Kolmogorov distance (means within a report or two)…
    let sim_mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(m, &c)| m as f64 * c as f64)
        .sum::<f64>()
        / TRIALS as f64;
    let exact_mean: f64 = (0..=cap).map(|m| m as f64 * expected.pmf(m)).sum();
    assert!(
        (sim_mean - exact_mean).abs() < 2.0,
        "means {sim_mean} vs {exact_mean}"
    );
    // …but statistically distinguishable.
    assert!(test.p_value < 0.05, "walk indistinguishable? {test:?}");
}
