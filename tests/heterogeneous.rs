//! Validation of the heterogeneous-fleet exact model against a
//! purpose-built simulation with per-sensor sensing ranges.
//!
//! The paper assumes one sensing range for all sensors; the exact model
//! factorizes over sensors, so mixed fleets are analyzable. The simulator
//! here evaluates per-sensor coverage directly (minimum-image distances on
//! the torus), independent of `gbd-field`'s single-radius queries.

use gbd_core::exact::{detection_probability_classes, SensorClass};
use gbd_core::params::SystemParams;
use gbd_geometry::point::{Point, Segment};
use gbd_motion::straight::StraightLine;
use gbd_motion::trajectory::MotionModel;
use gbd_stats::rng::rng_stream;
use rand::Rng as _;

const TRIALS: u64 = 2_500;

/// Minimum-image distance from a sensor to a track segment: shift the
/// sensor to the periodic image closest to the segment midpoint, then
/// measure once (valid because segments plus sensing ranges are far
/// smaller than half the field).
fn torus_distance(seg: &Segment, sensor: Point, w: f64, h: f64) -> f64 {
    let mid = seg.midpoint();
    let mut dx = sensor.x - mid.x;
    let mut dy = sensor.y - mid.y;
    dx -= (dx / w).round() * w;
    dy -= (dy / h).round() * h;
    seg.distance_to(Point::new(mid.x + dx, mid.y + dy))
}

fn simulate_classes(params: SystemParams, classes: &[SensorClass], seed: u64) -> f64 {
    let w = params.field_width();
    let h = params.field_height();
    let model = StraightLine::new(params.speed());
    let mut hits = 0u64;
    for trial in 0..TRIALS {
        let mut rng = rng_stream(seed, trial);
        // Deploy every class uniformly.
        let mut sensors: Vec<(Point, f64, f64)> = Vec::new();
        for class in classes {
            for _ in 0..class.count {
                sensors.push((
                    Point::new(rng.gen_range(0.0..w), rng.gen_range(0.0..h)),
                    class.sensing_range,
                    class.pd,
                ));
            }
        }
        let start = Point::new(rng.gen_range(0.0..w), rng.gen_range(0.0..h));
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let traj = model.generate(
            start,
            heading,
            params.period_s(),
            params.m_periods(),
            &mut rng,
        );
        let mut reports = 0usize;
        for period in 1..=params.m_periods() {
            let seg = traj.segment(period);
            for &(pos, rs, pd) in &sensors {
                if torus_distance(&seg, pos, w, h) <= rs && rng.gen_bool(pd) {
                    reports += 1;
                }
            }
        }
        if reports >= params.k() {
            hits += 1;
        }
    }
    hits as f64 / TRIALS as f64
}

#[test]
fn mixed_fleet_analysis_matches_simulation() {
    let params = SystemParams::paper_defaults();
    // 30 long-range sonars among 150 short-range hydrophones.
    let classes = [
        SensorClass {
            count: 150,
            sensing_range: 700.0,
            pd: 0.9,
        },
        SensorClass {
            count: 30,
            sensing_range: 2_500.0,
            pd: 0.85,
        },
    ];
    let ana = detection_probability_classes(&params, &classes, params.k());
    let sim = simulate_classes(params, &classes, 314);
    let se = (sim * (1.0 - sim) / TRIALS as f64).sqrt().max(1e-3);
    assert!(
        (ana - sim).abs() < 4.0 * se + 0.015,
        "analysis {ana:.4} vs simulation {sim:.4}"
    );
}

#[test]
fn homogeneous_class_agrees_with_main_simulator() {
    // Cross-check the independent per-sensor simulation against the
    // production engine for a single class.
    use gbd_sim::config::SimConfig;
    use gbd_sim::runner::run;
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let classes = [SensorClass {
        count: 150,
        sensing_range: 1_000.0,
        pd: 0.9,
    }];
    let bespoke = simulate_classes(params, &classes, 77);
    let engine = run(&SimConfig::new(params).with_trials(TRIALS).with_seed(78));
    assert!(
        (bespoke - engine.detection_probability).abs() < 0.04,
        "bespoke {bespoke:.4} vs engine {:.4}",
        engine.detection_probability
    );
}

#[test]
fn fleet_mix_directions_follow_swept_vs_disk_area() {
    // Design insights only the heterogeneous model can give. Two budget
    // conventions give opposite answers:
    // (a) equal total DISK area (N·Rs² constant): the many-short fleet
    //     sweeps twice the area per period (swept ∝ N·Rs) and wins;
    // (b) equal total SWEPT area (N·Rs constant): the few-long fleet wins —
    //     its π·Rs² terms are larger and each sensor can deliver several of
    //     the k reports by covering the target over more periods.
    let params = SystemParams::paper_defaults();
    // (a) 400·π·500² == 100·π·1000².
    let many_short = [SensorClass {
        count: 400,
        sensing_range: 500.0,
        pd: 0.9,
    }];
    let few_long = [SensorClass {
        count: 100,
        sensing_range: 1_000.0,
        pd: 0.9,
    }];
    let p_short = detection_probability_classes(&params, &many_short, 5);
    let p_long = detection_probability_classes(&params, &few_long, 5);
    assert!(
        p_short > p_long,
        "disk-budget: short {p_short:.4} vs long {p_long:.4}"
    );
    // (b) 300·500 == 75·2000.
    let many_short = [SensorClass {
        count: 300,
        sensing_range: 500.0,
        pd: 0.9,
    }];
    let few_long = [SensorClass {
        count: 75,
        sensing_range: 2_000.0,
        pd: 0.9,
    }];
    let p_short = detection_probability_classes(&params, &many_short, 5);
    let p_long = detection_probability_classes(&params, &few_long, 5);
    assert!(
        p_long > p_short,
        "swept-budget: short {p_short:.4} vs long {p_long:.4}"
    );
}
