//! The unified `DetectionModel` trait and the evaluation engine must agree
//! with the free-function seed paths: every backend reachable through one
//! trait object, all backends telling one story at a tractable operating
//! point, and the engine's caches changing speed but never values.

use sparse_groupdet::core::model::{
    DetectionModel, ExactModel, MsModel, PoissonModel, SModel, TModel,
};
use sparse_groupdet::engine::{EvalOptions, SimulationSpec};
use sparse_groupdet::prelude::*;

/// A point small enough for the T-approach's state enumeration: M = 4
/// periods, N = 60 sensors, k = 2.
fn tractable_point() -> SystemParams {
    SystemParams::paper_defaults()
        .with_m_periods(4)
        .with_n_sensors(60)
        .with_k(2)
}

fn fig9a_grid() -> Vec<EvalRequest> {
    let mut requests = Vec::new();
    for &speed in &[4.0, 10.0] {
        for n in (60..=240).step_by(30) {
            requests.push(EvalRequest::new(
                SystemParams::paper_defaults()
                    .with_n_sensors(n)
                    .with_speed(speed),
                BackendSpec::ms_default(),
            ));
        }
    }
    requests
}

#[test]
fn every_backend_is_reachable_through_the_trait() {
    let params = tractable_point();
    let models: Vec<Box<dyn DetectionModel>> = vec![
        Box::new(MsModel::default()),
        Box::new(SModel::default()),
        Box::new(ExactModel::default()),
        Box::new(TModel::default()),
        Box::new(PoissonModel),
    ];
    for model in &models {
        let p = model
            .detection_probability(&params)
            .unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        assert!(
            (0.0..=1.0).contains(&p),
            "{}: {p} out of range",
            model.name()
        );
    }
}

#[test]
fn ms_t_and_exact_agree_at_small_m_via_trait() {
    // At a tractable point with generous caps, the M-S-approach and the
    // T-approach truncate the same state space, and both approximate the
    // exact reference closely.
    let params = tractable_point();
    let opts = MsOptions {
        g: 4,
        gh: 4,
        eps: 0.0,
    };
    let ms = MsModel { opts }.detection_probability(&params).unwrap();
    let t = TModel {
        opts,
        max_states: 4_000_000,
    }
    .detection_probability(&params)
    .unwrap();
    let exact = ExactModel::default()
        .detection_probability(&params)
        .unwrap();
    assert!(
        (ms - t).abs() < 1e-6,
        "MS {ms:.8} vs T {t:.8} diverge beyond truncation noise"
    );
    assert!((ms - exact).abs() < 5e-3, "MS {ms:.5} vs exact {exact:.5}");
    assert!((t - exact).abs() < 5e-3, "T {t:.5} vs exact {exact:.5}");
}

#[test]
fn engine_matches_the_seed_analysis_path_on_the_fig9a_grid() {
    let engine = Engine::new();
    let grid = fig9a_grid();
    for response in engine.evaluate_batch(&grid) {
        let request = &grid[response.index];
        let direct = ms_analyze(&request.params, &MsOptions::default()).unwrap();
        let k = request.params.k();
        let via_engine = response.detection_probability().unwrap();
        assert_eq!(
            via_engine,
            direct.detection_probability(k),
            "engine and direct analyze disagree at N = {}",
            request.params.n_sensors()
        );
    }
}

#[test]
fn warm_sweep_is_bit_identical_to_cold_with_nonzero_hits() {
    let engine = Engine::new();
    let grid = fig9a_grid();
    let cold = engine.evaluate_batch(&grid);
    let warm = engine.evaluate_batch(&grid);
    for (c, w) in cold.iter().zip(&warm) {
        // PartialEq on f64-carrying outputs: equality here IS
        // bit-for-bit value identity.
        assert_eq!(c.outcome, w.outcome);
    }
    let hits: u64 = warm.iter().map(|r| r.cache.hits).sum();
    let misses: u64 = warm.iter().map(|r| r.cache.misses).sum();
    assert!(hits > 0, "warm pass must be served from the cache");
    assert_eq!(misses, 0, "warm pass must not recompute anything");

    // And bypassing the cache reproduces the same values again.
    let bypassed: Vec<EvalRequest> = grid
        .iter()
        .cloned()
        .map(|mut request| {
            request.options = EvalOptions {
                bypass_cache: true,
                ..request.options.clone()
            };
            request
        })
        .collect();
    for (b, w) in engine.evaluate_batch(&bypassed).iter().zip(&warm) {
        assert_eq!(b.outcome, w.outcome);
    }
}

#[test]
fn simulation_flows_through_the_same_batch_api() {
    let params = tractable_point();
    let spec = SimulationSpec {
        trials: 400,
        seed: 11,
        threads: 1,
        ..SimulationSpec::default()
    };
    let engine = Engine::new();
    let requests = [
        EvalRequest::new(params, BackendSpec::ms_default()),
        EvalRequest::new(params, BackendSpec::Simulation(spec)),
    ];
    let responses = engine.evaluate_batch(&requests);
    let analysis = responses[0].detection_probability().unwrap();
    let simulated = responses[1].detection_probability().unwrap();
    assert!(
        (analysis - simulated).abs() < 0.1,
        "analysis {analysis:.4} vs simulation {simulated:.4}"
    );
    // Identical to calling the simulator directly with the same config.
    let direct = run_simulation(&spec.to_config(params).unwrap());
    assert_eq!(
        responses[1].outcome.as_ref().unwrap().simulation().unwrap(),
        &direct
    );
}
