//! Hardening: boundary configurations pushed through every model.
//!
//! Each case asserts the models return finite, consistent probabilities —
//! no panics, no NaNs, tails in `[0, 1]` — at the edges of the parameter
//! space a downstream user might reach.

use gbd_core::exact;
use gbd_core::extension_h;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::s_approach::{self, SOptions};
use gbd_core::single_period;
use sparse_groupdet::prelude::*;

fn check_all_models(params: SystemParams, label: &str) {
    let k = params.k();
    let ms = ms_approach::analyze(&params, &MsOptions::default())
        .unwrap_or_else(|e| panic!("{label}: ms_approach failed: {e}"));
    let p_ms = ms.detection_probability(k);
    assert!(
        (0.0..=1.0 + 1e-12).contains(&p_ms) && p_ms.is_finite(),
        "{label}: p_ms={p_ms}"
    );

    let s = s_approach::analyze(&params, &SOptions::default())
        .unwrap_or_else(|e| panic!("{label}: s_approach failed: {e}"));
    let p_s = s.detection_probability(k);
    assert!(p_s.is_finite(), "{label}");

    let p_exact = exact::detection_probability(&params, k);
    assert!((0.0..=1.0).contains(&p_exact), "{label}: exact={p_exact}");

    // Exact is the reference; both approximations near it.
    assert!(
        (p_ms - p_exact).abs() < 0.05,
        "{label}: ms {p_ms} vs exact {p_exact}"
    );

    let h = extension_h::analyze(&params, 2, &MsOptions::default())
        .unwrap_or_else(|e| panic!("{label}: extension_h failed: {e}"));
    assert!(
        h.detection_probability(k, 1) + 1e-9 >= h.detection_probability(k, 2),
        "{label}"
    );
}

#[test]
fn single_period_window() {
    check_all_models(
        SystemParams::paper_defaults().with_m_periods(1).with_k(1),
        "M=1",
    );
}

#[test]
fn threshold_one() {
    check_all_models(SystemParams::paper_defaults().with_k(1), "k=1");
}

#[test]
fn threshold_above_plausible_reports() {
    // k = 60: detection essentially impossible; everything must stay
    // finite and near zero.
    let params = SystemParams::paper_defaults().with_k(60);
    let p = exact::detection_probability(&params, 60);
    assert!(p < 1e-3, "p={p}");
    check_all_models(params, "k=60");
}

#[test]
fn tiny_fleet() {
    check_all_models(
        SystemParams::paper_defaults().with_n_sensors(1).with_k(1),
        "N=1",
    );
    // Zero sensors: nothing ever detects.
    let none = SystemParams::paper_defaults().with_n_sensors(0).with_k(1);
    assert_eq!(exact::detection_probability(&none, 1), 0.0);
    let r = ms_approach::analyze(&none, &MsOptions::default()).unwrap();
    assert_eq!(r.detection_probability_unnormalized(1), 0.0);
}

#[test]
fn certain_and_impossible_sensing() {
    check_all_models(SystemParams::paper_defaults().with_pd(1.0), "pd=1");
    let blind = SystemParams::paper_defaults().with_pd(0.0);
    assert_eq!(exact::detection_probability(&blind, 1), 0.0);
    let r = ms_approach::analyze(&blind, &MsOptions::default()).unwrap();
    assert_eq!(r.detection_probability(5), 0.0);
}

#[test]
fn very_fast_target_ms_equals_one() {
    // V·t > 2·Rs: consecutive DRs overlap only at the shared endpoint disk.
    let params = SystemParams::paper_defaults().with_speed(40.0); // step 2400 > 2000
    assert_eq!(params.ms(), 1);
    check_all_models(params, "ms=1");
}

#[test]
fn very_slow_target_large_ms() {
    // V = 1 m/s: step 60 m, ms = 34 — long overlap chains.
    let params = SystemParams::paper_defaults().with_speed(1.0).with_k(2);
    assert_eq!(params.ms(), 34);
    check_all_models(params, "ms=34");
}

#[test]
fn dense_network_leaves_sparse_regime_gracefully() {
    // 5 000 sensors: no longer sparse; models must still agree.
    let params = SystemParams::paper_defaults()
        .with_n_sensors(5_000)
        .with_k(40);
    let p = exact::detection_probability(&params, 40);
    assert!((0.0..=1.0).contains(&p));
    let r = ms_approach::analyze(
        &params,
        &MsOptions {
            g: 8,
            gh: 12,
            eps: 0.0,
        },
    )
    .unwrap();
    assert!((r.detection_probability(40) - p).abs() < 0.05);
}

#[test]
fn tiny_field_that_still_contains_the_aregion() {
    // Smallest square field containing the ARegion at M = 4.
    let side = 6_000.0;
    let params = SystemParams::new(side, side, 30, 1_000.0, 10.0, 60.0, 0.9, 4, 2).unwrap();
    assert!(params.aregion_area() <= params.field_area());
    check_all_models(params, "tiny field");
}

#[test]
fn simulator_handles_extremes() {
    // One-sensor fleet, one trial; pd = 1 fleet; M = 1 window.
    for (label, params) in [
        (
            "N=1",
            SystemParams::paper_defaults().with_n_sensors(1).with_k(1),
        ),
        ("pd=1", SystemParams::paper_defaults().with_pd(1.0)),
        (
            "M=1",
            SystemParams::paper_defaults().with_m_periods(1).with_k(1),
        ),
    ] {
        let r = run_simulation(&SimConfig::new(params).with_trials(50).with_seed(5));
        assert!(r.detection_probability.is_finite(), "{label}");
        assert!(r.confidence.lo <= r.confidence.hi, "{label}");
    }
}

#[test]
fn single_period_model_consistency_at_edges() {
    for params in [
        SystemParams::paper_defaults().with_pd(0.0),
        SystemParams::paper_defaults().with_pd(1.0),
        SystemParams::paper_defaults().with_n_sensors(0),
    ] {
        let p1 = single_period::probability_at_least(&params, 1);
        assert!((0.0..=1.0).contains(&p1));
        assert_eq!(single_period::probability_at_least(&params, 0), 1.0);
    }
}
