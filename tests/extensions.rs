//! Validation of the paper's extensions against simulation: the §4 h-node
//! rule and the §6 varying-speed analysis.

use gbd_core::extension_h;
use gbd_core::ms_approach::MsOptions;
use gbd_core::varying_speed;
use gbd_sim::config::{MotionSpec, SimConfig};
use gbd_sim::engine::run_trial;
use sparse_groupdet::prelude::*;
use std::collections::HashSet;

const TRIALS: u64 = 2_500;

/// Simulated probability of ">= k reports from >= h distinct sensors".
fn simulate_h(params: SystemParams, h: usize, seed: u64) -> f64 {
    let config = SimConfig::new(params).with_trials(TRIALS).with_seed(seed);
    let mut hits = 0u64;
    for trial in 0..TRIALS {
        let out = run_trial(&config, trial);
        if out.true_reports < params.k() {
            continue;
        }
        let distinct: HashSet<_> = out.reports.iter().map(|r| r.sensor).collect();
        if distinct.len() >= h {
            hits += 1;
        }
    }
    hits as f64 / TRIALS as f64
}

#[test]
fn h_extension_matches_simulation() {
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let analysis = extension_h::analyze(&params, 4, &MsOptions::default()).unwrap();
    for h in [1usize, 2, 4] {
        let ana = analysis.detection_probability(params.k(), h);
        let sim = simulate_h(params, h, 101);
        let se = (sim * (1.0 - sim) / TRIALS as f64).sqrt().max(1e-3);
        assert!(
            (ana - sim).abs() < 4.0 * se + 0.015,
            "h={h}: analysis {ana:.4} vs sim {sim:.4}"
        );
    }
}

#[test]
fn h_extension_ordering_matches_simulation_ordering() {
    let params = SystemParams::paper_defaults().with_n_sensors(120);
    let analysis = extension_h::analyze(&params, 5, &MsOptions::default()).unwrap();
    let sim1 = simulate_h(params, 1, 7);
    let sim5 = simulate_h(params, 5, 7);
    assert!(sim1 >= sim5);
    assert!(analysis.detection_probability(5, 1) >= analysis.detection_probability(5, 5));
}

#[test]
fn varying_speed_analysis_matches_varying_speed_simulation() {
    // Target speed drawn uniformly in [4, 10] m/s each period. The
    // analysis is run per-trial-averaged via the band plus a midpoint
    // sequence; the simulation draws fresh speeds per trial, so compare
    // the simulated probability against the analytical band.
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let opts = MsOptions::default();
    let (lo, hi) =
        varying_speed::detection_probability_band(&params, 4.0, 10.0, params.k(), &opts)
            .unwrap();
    let sim = run_simulation(
        &SimConfig::new(params)
            .with_trials(TRIALS)
            .with_seed(3)
            .with_motion(MotionSpec::VaryingSpeed {
                v_min: 4.0,
                v_max: 10.0,
            }),
    );
    let p = sim.detection_probability;
    assert!(
        p > lo - 0.02 && p < hi + 0.02,
        "sim {p:.4} outside analytical band [{lo:.4}, {hi:.4}]"
    );
}

#[test]
fn fixed_speed_sequence_analysis_matches_matched_simulation() {
    // Use one specific speed sequence in both analysis and simulation: the
    // sharpest varying-speed check. We approximate "same sequence" in the
    // simulator by running the VaryingSpeed model with v_min == v_max per
    // phase via a two-segment profile encoded as alternating speeds.
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let speeds: Vec<f64> = (0..20).map(|i| if i < 10 { 4.0 } else { 10.0 }).collect();
    let ana = varying_speed::analyze_speeds(&params, &speeds, &MsOptions::default())
        .unwrap()
        .detection_probability(params.k());
    // Simulate by exact per-trial reproduction: a straight-line trajectory
    // with those steps, sensors redeployed each trial.
    use gbd_field::deployment::{Deployer, UniformRandom};
    use gbd_field::field::SensorField;
    use gbd_geometry::point::{Aabb, Point};
    use gbd_motion::varying_speed::VaryingSpeed;
    use gbd_stats::rng::rng_stream;
    use rand::Rng as _;
    let extent = Aabb::from_extent(params.field_width(), params.field_height());
    let mut hits = 0u64;
    for trial in 0..TRIALS {
        let mut rng = rng_stream(909, trial);
        let positions = UniformRandom.deploy(params.n_sensors(), &extent, &mut rng);
        let field = SensorField::new(extent, positions, BoundaryPolicy::Torus);
        let start = Point::new(
            rng.gen_range(extent.min.x..extent.max.x),
            rng.gen_range(extent.min.y..extent.max.y),
        );
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let traj =
            VaryingSpeed::trajectory_for_speeds(start, heading, params.period_s(), &speeds);
        let mut reports = 0usize;
        for period in 1..=params.m_periods() {
            let dr = traj.detectable_region(period, params.sensing_range());
            for _ in field.query_stadium(&dr) {
                if rng.gen_bool(params.pd()) {
                    reports += 1;
                }
            }
        }
        if reports >= params.k() {
            hits += 1;
        }
    }
    let sim = hits as f64 / TRIALS as f64;
    let se = (sim * (1.0 - sim) / TRIALS as f64).sqrt();
    assert!(
        (ana - sim).abs() < 4.0 * se + 0.015,
        "analysis {ana:.4} vs sim {sim:.4}"
    );
}

#[test]
fn duty_cycled_sensing_equals_scaled_pd_analysis() {
    // Related-work connection (§5: sleep scheduling): a sensor awake with
    // probability a each period detects a covered target with probability
    // a·Pd — so duty cycling is analytically equivalent to scaling Pd.
    use gbd_core::ms_approach::{analyze, MsOptions};
    let awake = 0.7;
    let params = SystemParams::paper_defaults().with_n_sensors(200);
    let equivalent = params.with_pd(params.pd() * awake);
    let ana = analyze(&equivalent, &MsOptions::default())
        .unwrap()
        .detection_probability(params.k());
    let sim = run_simulation(
        &SimConfig::new(params)
            .with_trials(TRIALS)
            .with_seed(71)
            .with_awake_probability(awake),
    );
    assert!(
        sim.confidence.lo - 0.02 <= ana && ana <= sim.confidence.hi + 0.02,
        "analysis {ana:.4} vs duty-cycled sim {:.4} [{:.4},{:.4}]",
        sim.detection_probability,
        sim.confidence.lo,
        sim.confidence.hi
    );
}

#[test]
fn duty_cycling_reduces_detection() {
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let always_on = run_simulation(&SimConfig::new(params).with_trials(TRIALS).with_seed(72));
    let half = run_simulation(
        &SimConfig::new(params)
            .with_trials(TRIALS)
            .with_seed(72)
            .with_awake_probability(0.5),
    );
    assert!(half.detection_probability < always_on.detection_probability - 0.05);
}
