//! Chaos integration tests: the fault-injection harness drives the
//! engine's resilience machinery end to end.
//!
//! The headline scenario is the acceptance proof of the fault-tolerance
//! work: a batch of 32 requests with 4 injected worker panics and 2
//! injected deadline overruns completes with exactly 26 `Ok` responses
//! (bit-identical to a fault-free run), 4 `WorkerPanicked` and 2
//! `DeadlineExceeded` — all reproducible from the plan seed. Set
//! `GBD_CHAOS_SEED` to rerun the suite under a different seed (the
//! `--chaos` mode of `scripts/check.sh` loops over three).

use gbd_core::params::SystemParams;
use gbd_engine::{
    BackendSpec, ChaosPlan, Engine, EvalError, EvalRequest, EvalResponse, RetryPolicy,
    SimulationSpec,
};
use std::sync::Once;
use std::time::Duration;

/// One hour: a deadline no real request here ever approaches, so only the
/// injected (virtual) latency can trip it.
const DEADLINE: Duration = Duration::from_secs(3600);
/// Two hours of injected latency: always over [`DEADLINE`].
const INJECTED_LATENCY: Duration = Duration::from_secs(7200);

fn chaos_seed() -> u64 {
    std::env::var("GBD_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2008)
}

/// Injected panics are expected; keep their backtrace spam out of the test
/// output while leaving real panics loud.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|msg| msg.starts_with("chaos:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// 32 analytical requests with distinct parameters and a generous deadline.
fn batch_of_32() -> Vec<EvalRequest> {
    (0..32)
        .map(|i| {
            let params = SystemParams::paper_defaults().with_n_sensors(60 + 6 * i);
            let mut request = EvalRequest::new(params, BackendSpec::ms_default());
            request.options.deadline = Some(DEADLINE);
            request
        })
        .collect()
}

/// The deterministic fields of a response — everything except wall-clock
/// duration and cache traffic.
fn deterministic_view(r: &EvalResponse) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        r.index,
        r.backend,
        r.served_by,
        r.degraded,
        &r.outcome,
        &r.detection,
    )
}

#[test]
fn injected_faults_isolate_and_reproduce() {
    silence_injected_panics();
    let seed = chaos_seed();
    let plan = ChaosPlan::new(seed)
        .with_worker_panics(4)
        .with_stage_latency(2, INJECTED_LATENCY);
    let requests = batch_of_32();

    let clean = Engine::new().evaluate_batch(&requests);
    assert!(clean.iter().all(|r| r.outcome.is_ok()));

    let faulted = Engine::new().with_chaos(plan).evaluate_batch(&requests);
    assert_eq!(faulted.len(), 32);

    let panic_at = plan.panic_indices(32);
    let slow_at = plan.latency_indices(32);
    assert_eq!(panic_at.len(), 4);
    assert_eq!(slow_at.len(), 2);

    let mut ok = 0;
    for (i, response) in faulted.iter().enumerate() {
        assert_eq!(response.index, i);
        if panic_at.contains(&i) {
            match &response.outcome {
                Err(EvalError::WorkerPanicked {
                    request_index,
                    payload,
                }) => {
                    assert_eq!(*request_index, i);
                    assert!(payload.contains("chaos"), "payload: {payload}");
                }
                other => panic!("request {i}: expected WorkerPanicked, got {other:?}"),
            }
            assert!(response.detection.is_empty());
        } else if slow_at.contains(&i) {
            match &response.outcome {
                Err(EvalError::DeadlineExceeded {
                    elapsed,
                    completed_stages,
                }) => {
                    assert_eq!(*elapsed, INJECTED_LATENCY);
                    assert_eq!(*completed_stages, 0);
                }
                other => panic!("request {i}: expected DeadlineExceeded, got {other:?}"),
            }
        } else {
            // Non-faulted requests are bit-identical to the fault-free run.
            ok += 1;
            assert!(!response.degraded);
            assert_eq!(response.outcome, clean[i].outcome, "request {i}");
            assert_eq!(response.detection, clean[i].detection, "request {i}");
        }
    }
    assert_eq!(ok, 26);

    // The whole faulted batch reproduces from the seed.
    let again = Engine::new().with_chaos(plan).evaluate_batch(&requests);
    for (a, b) in faulted.iter().zip(&again) {
        assert_eq!(deterministic_view(a), deterministic_view(b));
    }
}

#[test]
fn degradation_chain_absorbs_deadline_faults() {
    silence_injected_panics();
    let plan = ChaosPlan::new(chaos_seed())
        .with_worker_panics(4)
        .with_stage_latency(2, INJECTED_LATENCY);
    let requests: Vec<EvalRequest> = (0..32)
        .map(|i| {
            let params = SystemParams::paper_defaults().with_n_sensors(60 + 6 * i);
            let mut request = EvalRequest::new(
                params,
                BackendSpec::ms_default().with_fallback(BackendSpec::Poisson),
            );
            request.options.deadline = Some(DEADLINE);
            request
        })
        .collect();
    let responses = Engine::new().with_chaos(plan).evaluate_batch(&requests);

    let panic_at = plan.panic_indices(32);
    let slow_at = plan.latency_indices(32);
    for (i, response) in responses.iter().enumerate() {
        if slow_at.contains(&i) {
            // The primary overran its (injected) deadline; the Poisson
            // fallback answered.
            assert!(response.degraded, "request {i} not degraded");
            assert_eq!(response.served_by, "poisson");
            assert!(response.outcome.is_ok());
            let direct = Engine::new()
                .evaluate(&EvalRequest::new(requests[i].params, BackendSpec::Poisson));
            assert_eq!(response.outcome, direct.outcome);
        } else if panic_at.contains(&i) {
            // Persistent panics take down the fallback attempt too; the
            // response carries the *primary* error.
            assert!(!response.degraded);
            assert!(matches!(
                response.outcome,
                Err(EvalError::WorkerPanicked { .. })
            ));
        } else {
            assert!(!response.degraded);
            assert_eq!(response.served_by, "ms");
            assert!(response.outcome.is_ok());
        }
    }
}

#[test]
fn seeded_retry_recovers_transient_panics() {
    silence_injected_panics();
    let plan = ChaosPlan::new(chaos_seed())
        .with_worker_panics(2)
        .transient();
    let spec = SimulationSpec {
        trials: 120,
        threads: 1,
        ..SimulationSpec::default()
    };
    let requests: Vec<EvalRequest> = (0..8)
        .map(|i| {
            let params = SystemParams::paper_defaults().with_n_sensors(60 + 12 * i);
            let mut request = EvalRequest::new(params, BackendSpec::Simulation(spec));
            request.options.retry = Some(RetryPolicy::new(1));
            request
        })
        .collect();

    let clean = Engine::new().evaluate_batch(&requests);
    let healed = Engine::new().with_chaos(plan).evaluate_batch(&requests);
    // Every request succeeds — the retry absorbed the transient panics —
    // and the results are bit-identical to the fault-free run (retries are
    // deterministic in the request seed).
    for (h, c) in healed.iter().zip(&clean) {
        assert!(h.outcome.is_ok(), "request {}: {:?}", h.index, h.outcome);
        assert_eq!(h.outcome, c.outcome);
    }

    // Without a retry policy the same plan fails both faulted requests.
    let no_retry: Vec<EvalRequest> = requests
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.options.retry = None;
            r
        })
        .collect();
    let unhealed = Engine::new().with_chaos(plan).evaluate_batch(&no_retry);
    let failures = unhealed
        .iter()
        .filter(|r| matches!(r.outcome, Err(EvalError::WorkerPanicked { .. })))
        .count();
    assert_eq!(failures, 2);
}
