//! End-to-end validation: the analytical models against the Monte Carlo
//! simulator — the reproduction of the paper's §4 at reduced trial counts.
//!
//! The full-resolution runs (10 000 trials per point) live in the
//! `gbd-bench` figure binaries; these tests use fewer trials with
//! statistically safe tolerances so `cargo test` stays fast.

use sparse_groupdet::prelude::*;

const TRIALS: u64 = 2_500;

fn paper(n: usize, v: f64) -> SystemParams {
    SystemParams::paper_defaults()
        .with_n_sensors(n)
        .with_speed(v)
}

/// Wilson CI widened by the analytical model's own error budget.
fn close(analysis: f64, sim: &SimResult) -> bool {
    analysis >= sim.confidence.lo - 0.02 && analysis <= sim.confidence.hi + 0.02
}

#[test]
fn figure_9a_analysis_matches_simulation_straight_line() {
    // A 3 x 2 grid of the paper's Figure 9(a) points.
    for (n, v) in [
        (60, 4.0),
        (150, 4.0),
        (240, 4.0),
        (60, 10.0),
        (150, 10.0),
        (240, 10.0),
    ] {
        let params = paper(n, v);
        let analysis = ms_analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(params.k());
        let sim = run_simulation(&SimConfig::new(params).with_trials(TRIALS).with_seed(42));
        assert!(
            close(analysis, &sim),
            "N={n} V={v}: analysis {analysis:.4} vs sim {:.4} [{:.4},{:.4}]",
            sim.detection_probability,
            sim.confidence.lo,
            sim.confidence.hi
        );
    }
}

#[test]
fn figure_9a_monotone_in_n_in_both_analysis_and_simulation() {
    let mut prev_sim = 0.0;
    let mut prev_ana = 0.0;
    for n in [60, 120, 180, 240] {
        let params = paper(n, 10.0);
        let ana = ms_analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(5);
        let sim = run_simulation(&SimConfig::new(params).with_trials(TRIALS).with_seed(7));
        assert!(ana > prev_ana, "analysis not monotone at N={n}");
        assert!(
            sim.detection_probability > prev_sim - 0.02,
            "simulation not monotone at N={n}"
        );
        prev_ana = ana;
        prev_sim = sim.detection_probability;
    }
}

#[test]
fn figure_9b_unnormalized_analysis_undershoots_simulation() {
    // The paper: without normalization the analysis error grows with N and
    // V, and the unnormalized curve sits *below* the simulation.
    let params = paper(240, 10.0);
    let r = ms_analyze(&params, &MsOptions::default()).unwrap();
    let sim = run_simulation(&SimConfig::new(params).with_trials(TRIALS).with_seed(3));
    let unnorm = r.detection_probability_unnormalized(5);
    let norm = r.detection_probability(5);
    assert!(unnorm < norm);
    assert!(
        sim.detection_probability - unnorm > 0.01,
        "expected visible undershoot: sim {:.4} vs unnormalized {unnorm:.4}",
        sim.detection_probability
    );
    // And the error is larger at (240, 10) than at (60, 4), as in Fig 9(b).
    let params_small = paper(60, 4.0);
    let r_small = ms_analyze(&params_small, &MsOptions::default()).unwrap();
    let gap_small =
        r_small.detection_probability(5) - r_small.detection_probability_unnormalized(5);
    let gap_big = norm - unnorm;
    assert!(gap_big > gap_small, "gap {gap_big:.4} vs {gap_small:.4}");
}

#[test]
fn figure_9c_random_walk_close_to_straight_line_analysis() {
    // The paper: random-walk simulation stays close to the straight-line
    // analysis (max error 2.4%), sitting at or slightly below it.
    for (n, v) in [(120, 10.0), (240, 10.0)] {
        let params = paper(n, v);
        let analysis = ms_analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(5);
        let sim = run_simulation(
            &SimConfig::new(params)
                .with_trials(TRIALS)
                .with_seed(11)
                .with_paper_random_walk(),
        );
        let diff = analysis - sim.detection_probability;
        // Analysis upper-bounds the walk (within noise), error small.
        assert!(diff > -0.03, "N={n}: walk above analysis by {}", -diff);
        assert!(diff < 0.06, "N={n}: error too large: {diff}");
    }
}

#[test]
fn faster_targets_detected_more_often_in_simulation() {
    let slow = run_simulation(
        &SimConfig::new(paper(150, 4.0))
            .with_trials(TRIALS)
            .with_seed(5),
    );
    let fast = run_simulation(
        &SimConfig::new(paper(150, 10.0))
            .with_trials(TRIALS)
            .with_seed(5),
    );
    assert!(fast.detection_probability > slow.detection_probability);
}

#[test]
fn expected_report_count_matches_analysis() {
    // E[reports] = N · Pd · Σ_i i·Region(i) / S = N · Pd · M · |DR| / S on
    // a torus field (each sensor earns one detection chance per period it
    // covers): a sharp cross-check between the simulator and the geometry.
    let params = paper(240, 10.0);
    let expect =
        params.n_sensors() as f64 * params.pd() * params.m_periods() as f64 * params.dr_area()
            / params.field_area();
    let sim = run_simulation(&SimConfig::new(params).with_trials(TRIALS).with_seed(13));
    let got = sim.report_counts.mean();
    let se = sim.report_counts.std_dev() / (sim.trials as f64).sqrt();
    assert!(
        (got - expect).abs() < 4.0 * se + 0.01,
        "mean reports {got:.3} vs analytic {expect:.3} (se {se:.4})"
    );
}

#[test]
fn bounded_field_detects_less_than_torus() {
    // The border effect the analysis ignores: with a bounded field part of
    // the ARegion falls outside, so detection probability drops.
    let params = paper(150, 10.0);
    let torus = run_simulation(&SimConfig::new(params).with_trials(TRIALS).with_seed(17));
    let bounded = run_simulation(
        &SimConfig::new(params)
            .with_trials(TRIALS)
            .with_seed(17)
            .with_boundary(BoundaryPolicy::Bounded),
    );
    assert!(
        torus.detection_probability > bounded.detection_probability,
        "torus {:.4} vs bounded {:.4}",
        torus.detection_probability,
        bounded.detection_probability
    );
}
