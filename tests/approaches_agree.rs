//! Cross-model consistency: the S-approach, M-S-approach and the exact
//! reference must tell one coherent story across the parameter space.

use gbd_core::accuracy::{predicted_accuracy_ms, predicted_accuracy_s, required_caps};
use gbd_core::exact;
use gbd_core::ms_approach::{self, MsOptions};
use gbd_core::s_approach::{self, SOptions};
use gbd_core::single_period;
use sparse_groupdet::prelude::SystemParams;

fn grid() -> Vec<SystemParams> {
    let mut out = Vec::new();
    for n in [60usize, 150, 240] {
        for v in [4.0, 10.0] {
            out.push(
                SystemParams::paper_defaults()
                    .with_n_sensors(n)
                    .with_speed(v),
            );
        }
    }
    out
}

#[test]
fn ms_and_s_agree_with_exact_across_grid() {
    for params in grid() {
        let k = params.k();
        let truth = exact::detection_probability(&params, k);
        let ms = ms_approach::analyze(
            &params,
            &MsOptions {
                g: 6,
                gh: 6,
                eps: 0.0,
            },
        )
        .unwrap()
        .detection_probability(k);
        let s = s_approach::analyze(&params, &SOptions { cap_sensors: 20 })
            .unwrap()
            .detection_probability(k);
        assert!((ms - truth).abs() < 5e-3, "MS {ms:.5} vs exact {truth:.5}");
        assert!((s - truth).abs() < 1e-4, "S {s:.5} vs exact {truth:.5}");
    }
}

#[test]
fn paper_default_caps_are_accurate_after_normalization() {
    // §4: with g = gh = 3 the normalized analysis error stays ~1% across
    // the whole evaluated range.
    for params in grid() {
        let truth = exact::detection_probability(&params, 5);
        let ms = ms_approach::analyze(&params, &MsOptions::default())
            .unwrap()
            .detection_probability(5);
        assert!(
            (ms - truth).abs() < 0.012,
            "N={} V={}: {ms:.4} vs {truth:.4}",
            params.n_sensors(),
            params.speed()
        );
    }
}

#[test]
fn required_caps_deliver_their_promised_accuracy() {
    for params in grid() {
        let caps = required_caps(&params, 0.99);
        assert!(predicted_accuracy_ms(&params, caps.g, caps.gh) >= 0.99 - 1e-9);
        assert!(predicted_accuracy_s(&params, caps.g_s_approach) >= 0.99 - 1e-9);
        // The Figure 8 relationship.
        assert!(caps.g_s_approach > caps.g.max(caps.gh) - 1);
    }
}

#[test]
fn m1_window_reduces_to_binomial_model_everywhere() {
    for base in grid() {
        let params = base.with_m_periods(1).with_k(1);
        let closed_form = single_period::probability_at_least(&params, 1);
        let via_exact = exact::detection_probability(&params, 1);
        assert!(
            (closed_form - via_exact).abs() < 1e-9,
            "closed {closed_form} vs exact {via_exact}"
        );
    }
}

#[test]
fn detection_probability_monotone_in_every_favorable_parameter() {
    let base = SystemParams::paper_defaults().with_n_sensors(120);
    let p = |params: &SystemParams| exact::detection_probability(params, params.k());
    // More sensors help.
    assert!(p(&base.with_n_sensors(180)) > p(&base));
    // Higher per-period detection probability helps.
    assert!(p(&base.with_pd(0.95)) > p(&base.with_pd(0.6)));
    // Longer sensing range helps.
    assert!(p(&base.with_sensing_range(1500.0)) > p(&base));
    // A longer window helps.
    assert!(p(&base.with_m_periods(30)) > p(&base.with_m_periods(10)));
    // A stricter threshold hurts.
    assert!(p(&base.with_k(8)) < p(&base.with_k(3)));
}

#[test]
fn truncation_error_decays_monotonically_in_caps() {
    let params = SystemParams::paper_defaults();
    let truth = exact::detection_probability(&params, 5);
    let mut prev = f64::INFINITY;
    for caps in 1..=6 {
        let ms = ms_approach::analyze(
            &params,
            &MsOptions {
                g: caps,
                gh: caps,
                eps: 0.0,
            },
        )
        .unwrap()
        .detection_probability(5);
        let err = (ms - truth).abs();
        assert!(err <= prev + 1e-9, "caps={caps}");
        prev = err;
    }
}

#[test]
fn normalization_always_improves_or_matches_raw_tail() {
    // |normalized − exact| <= |raw − exact| at the paper's operating point,
    // the mechanism behind Figure 9(a) vs 9(b).
    for params in grid() {
        let truth = exact::detection_probability(&params, 5);
        let r = ms_approach::analyze(&params, &MsOptions::default()).unwrap();
        let err_norm = (r.detection_probability(5) - truth).abs();
        let err_raw = (r.detection_probability_unnormalized(5) - truth).abs();
        assert!(
            err_norm <= err_raw + 1e-9,
            "N={} V={}: norm {err_norm:.5} raw {err_raw:.5}",
            params.n_sensors(),
            params.speed()
        );
    }
}
