//! First-passage validation: the analytical time-to-detection curves
//! against the simulated first detection period.

use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_core::time_to_detection;
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;

const TRIALS: u64 = 4_000;

/// Simulated `P[detected by period m]` curve.
fn simulated_curve(params: SystemParams, seed: u64) -> Vec<f64> {
    let config = SimConfig::new(params).with_trials(TRIALS).with_seed(seed);
    let m = params.m_periods();
    let mut by_period = vec![0u64; m];
    for trial in 0..TRIALS {
        let out = run_trial(&config, trial);
        if let Some(p) = out.first_detection_period(params.k()) {
            for slot in by_period.iter_mut().skip(p - 1) {
                *slot += 1;
            }
        }
    }
    by_period
        .iter()
        .map(|&c| c as f64 / TRIALS as f64)
        .collect()
}

#[test]
fn exact_first_passage_matches_simulation() {
    // Reduced window/caps keep the T-approach state space comfortable.
    let params = SystemParams::paper_defaults()
        .with_m_periods(8)
        .with_n_sensors(240)
        .with_k(3);
    let opts = MsOptions {
        g: 3,
        gh: 3,
        eps: 0.0,
    };
    let exact = time_to_detection::analyze_exact(&params, &opts, 20_000_000).unwrap();
    let sim = simulated_curve(params, 21);
    for (m, (a, s)) in exact.by_period.iter().zip(&sim).enumerate() {
        let se = (s * (1.0 - s) / TRIALS as f64).sqrt().max(1e-3);
        assert!(
            (a - s).abs() < 4.0 * se + 0.02,
            "period {}: exact {a:.4} vs sim {s:.4}",
            m + 1
        );
    }
}

#[test]
fn arrival_attributed_curve_upper_bounds_simulation() {
    let params = SystemParams::paper_defaults().with_n_sensors(150);
    let fast = time_to_detection::analyze(&params, &MsOptions::default()).unwrap();
    let sim = simulated_curve(params, 22);
    for (m, (a, s)) in fast.by_period.iter().zip(&sim).enumerate() {
        assert!(
            a + 0.03 >= *s,
            "period {}: fast {a:.4} below sim {s:.4}",
            m + 1
        );
    }
    // Endpoints agree: the window probability is attribution-invariant.
    let end_gap = (fast.by_period.last().unwrap() - sim.last().unwrap()).abs();
    assert!(end_gap < 0.03, "endpoint gap {end_gap}");
}

#[test]
fn simulated_median_detection_time_is_mid_window() {
    // At the paper's N = 240, V = 10 the system detects with P ≈ 0.98;
    // the median detection time from simulation sits mid-window, matching
    // the analytical conditional mean.
    let params = SystemParams::paper_defaults();
    let sim = simulated_curve(params, 23);
    let median_period = sim.iter().position(|&p| p >= 0.5).map(|i| i + 1).unwrap();
    assert!((6..=14).contains(&median_period), "median {median_period}");
    let fast = time_to_detection::analyze(&params, &MsOptions::default()).unwrap();
    let mean = fast.mean_period_given_detected().unwrap();
    assert!(
        (mean - median_period as f64).abs() < 5.0,
        "mean {mean} median {median_period}"
    );
}
