//! Property tests for the fallible builders: no input — however
//! malformed — may panic. Invalid values come back as
//! `CoreError::InvalidParameter`; accepted values produce detection
//! probabilities in `[0, 1]` from every analytical backend.

use gbd_core::params::SystemParams;
use gbd_core::s_approach::SOptions;
use gbd_core::CoreError;
use gbd_engine::{BackendSpec, Engine, EvalRequest};
use gbd_sim::config::SimConfig;
use gbd_sim::faults::FaultPlan;
use proptest::prelude::*;

/// Maps a unit draw onto a value that is *usually* pathological: NaN,
/// infinities, huge magnitudes, negatives, and a few ordinary values so
/// the accept path is exercised too.
fn adversarial(select: f64, magnitude: f64) -> f64 {
    match (select * 8.0) as usize {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -magnitude,
        4 => magnitude * 1e300,
        5 => -0.0,
        6 => magnitude * 1e-320, // subnormal territory
        _ => magnitude,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn params_builders_never_panic(
        (select, magnitude) in (0.0f64..1.0, 0.0f64..100.0),
        which in 0usize..3,
    ) {
        let value = adversarial(select, magnitude);
        let base = SystemParams::paper_defaults();
        let result = match which {
            0 => base.try_with_pd(value),
            1 => base.try_with_speed(value),
            _ => base.try_with_sensing_range(value),
        };
        // Either accepted (finite, in range) or a structured error — but
        // never a panic, and an accepted value round-trips.
        match result {
            Ok(p) => {
                prop_assert!(value.is_finite());
                let read_back = match which {
                    0 => p.pd(),
                    1 => p.speed(),
                    _ => p.sensing_range(),
                };
                prop_assert_eq!(read_back, value);
            }
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    #[test]
    fn full_constructor_never_panics(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..50.0), 6..7),
    ) {
        let v: Vec<f64> = raw.iter().map(|&(s, m)| adversarial(s, m)).collect();
        let result = SystemParams::new(
            v[0], v[1], 100, v[2], v[3], v[4], v[5], 20, 5,
        );
        if let Err(e) = result {
            prop_assert!(
                matches!(e, CoreError::InvalidParameter { .. }),
                "unexpected error class: {e}"
            );
        }
    }

    #[test]
    fn sim_config_builders_never_panic(
        (select, magnitude) in (0.0f64..1.0, 0.0f64..2.0),
        which in 0usize..2,
    ) {
        let value = adversarial(select, magnitude);
        let base = SimConfig::new(SystemParams::paper_defaults());
        let result = match which {
            0 => base.try_with_false_alarm_rate(value),
            _ => base.try_with_awake_probability(value),
        };
        match result {
            Ok(_) => prop_assert!(value.is_finite() && (0.0..=1.0).contains(&value)),
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    #[test]
    fn fault_plan_builders_never_panic(
        (select, magnitude) in (0.0f64..1.0, 0.0f64..2.0),
        which in 0usize..2,
    ) {
        let value = adversarial(select, magnitude);
        let base = FaultPlan::new(7);
        let result = match which {
            0 => base.try_with_node_failure_rate(value),
            _ => base.try_with_report_drop_rate(value),
        };
        match result {
            Ok(_) => prop_assert!(value.is_finite() && (0.0..=1.0).contains(&value)),
            Err(CoreError::InvalidParameter { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

proptest! {
    // Evaluating five backends per case is comparatively expensive; fewer
    // cases keep the suite fast while still sweeping the space.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn accepted_params_yield_probabilities(
        (n, pd, speed) in (20usize..150, 0.05f64..1.0, 1.0f64..15.0),
    ) {
        // A short window keeps the exponential backends (S, exact) cheap;
        // the property targets range correctness, not figure fidelity.
        let params = SystemParams::paper_defaults()
            .try_with_m_periods(6)
            .and_then(|p| p.try_with_n_sensors(n))
            .and_then(|p| p.try_with_pd(pd))
            .and_then(|p| p.try_with_speed(speed))
            .expect("all values drawn from valid ranges");
        let backends = [
            BackendSpec::ms_default(),
            BackendSpec::S(SOptions { cap_sensors: 4 }),
            BackendSpec::Exact { saturation_cap: 12 },
            BackendSpec::T {
                opts: Default::default(),
                max_states: 200_000,
            },
            BackendSpec::Poisson,
        ];
        let engine = Engine::new();
        for backend in backends {
            let response = engine.evaluate(&EvalRequest::new(params, backend));
            match &response.outcome {
                Ok(_) => {
                    let p = response
                        .detection_probability()
                        .expect("successful responses carry a probability");
                    prop_assert!(
                        (0.0..=1.0 + 1e-9).contains(&p),
                        "{}: p = {p} out of range",
                        backend.name()
                    );
                }
                // A backend may decline (e.g. the T backend's state budget);
                // it must do so with an error, never a panic.
                Err(e) => prop_assert!(
                    !e.is_transient(),
                    "{}: unexpected transient failure: {e}",
                    backend.name()
                ),
            }
        }
    }
}
