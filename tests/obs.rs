//! Integration tests of the `gbd-obs` metrics subsystem.
//!
//! The headline property is **exact telescoping**: windowed deltas sampled
//! while N threads hammer the instruments must sum to the lifetime totals
//! bit-for-bit — no samples lost to races, none double-counted. Around it:
//! consecutive-window exactness as seen by a live watcher draining a
//! bounded subscription, and a property test proving the versioned
//! `metrics` verb output survives a round trip through `gbd-serve`'s
//! strict JSON parser unchanged.

use gbd_engine::Engine;
use gbd_obs::{Registry, Window};
use gbd_serve::{Json, Section, ServerMetrics};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sum of a named histogram's per-window (count, sum) deltas.
fn hist_deltas(window: &Window, name: &str) -> (u64, u64) {
    let i = window
        .schema
        .histograms
        .iter()
        .position(|n| n == name)
        .expect("histogram in schema");
    (window.hist_count_deltas[i], window.hist_sum_deltas_us[i])
}

#[test]
fn window_deltas_telescope_to_lifetime_totals_under_contention() {
    const THREADS: u64 = 8;
    const OPS: u64 = 20_000;

    let registry = Arc::new(Registry::new());
    let ops = registry.counter("ops");
    let lat = registry.histogram("lat_us");
    let done = Arc::new(AtomicBool::new(false));

    // A live watcher drains the bounded subscription while sampling is in
    // flight. Whenever it holds two consecutive windows it checks delta
    // exactness: total_i - total_{i-1} == delta_i, which holds even when
    // the recording threads race the sampler mid-window.
    let subscription = registry.subscribe(false);
    let token = subscription.token.clone();
    let watcher = std::thread::spawn(move || {
        let mut prev: Option<Arc<Window>> = None;
        let mut received = 0u64;
        while let Ok(msg) = subscription.rx.recv() {
            if let Some(p) = &prev {
                if msg.window.seq == p.seq + 1 {
                    let delta = msg.window.counter_delta("ops").unwrap();
                    let total = msg.window.counter_total("ops").unwrap();
                    let prev_total = p.counter_total("ops").unwrap();
                    assert_eq!(
                        total - prev_total,
                        delta,
                        "window {} delta disagrees with total movement",
                        msg.window.seq
                    );
                }
            }
            prev = Some(Arc::clone(&msg.window));
            received += 1;
        }
        received
    });

    // The sampler plays the ticker, keeping every window it closes so
    // nothing is lost to ring eviction or watcher lag.
    let sampler = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut windows = Vec::new();
            while !done.load(Ordering::SeqCst) {
                windows.push(registry.sample_window());
                std::thread::sleep(Duration::from_micros(200));
            }
            windows
        })
    };

    let hammers: Vec<_> = (0..THREADS)
        .map(|t| {
            let ops = Arc::clone(&ops);
            let lat = Arc::clone(&lat);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    ops.inc();
                    lat.record_us(1 + (t * OPS + i) % 4096);
                }
            })
        })
        .collect();
    for hammer in hammers {
        hammer.join().expect("hammer thread");
    }
    done.store(true, Ordering::SeqCst);
    let mut windows = sampler.join().expect("sampler thread");
    // One final window picks up whatever landed after the last sample.
    windows.push(registry.sample_window());
    token.cancel();
    registry.reap_cancelled();
    let seen = watcher.join().expect("watcher thread");
    assert!(seen > 0, "watcher saw no windows");

    let delta_sum: u64 = windows
        .iter()
        .map(|w| w.counter_delta("ops").unwrap())
        .sum();
    assert_eq!(delta_sum, THREADS * OPS);
    assert_eq!(delta_sum, ops.get());
    let (count_sum, us_sum) = windows
        .iter()
        .map(|w| hist_deltas(w, "lat_us"))
        .fold((0u64, 0u64), |(c, s), (dc, ds)| (c + dc, s + ds));
    assert_eq!(count_sum, lat.count());
    assert_eq!(us_sum, lat.sum_us());
    let last = windows.last().unwrap();
    assert_eq!(last.counter_total("ops"), Some(THREADS * OPS));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The `metrics` verb payload — for any instrument state and any
    /// section selection — renders to a line the strict wire parser
    /// accepts, and re-rendering the parse reproduces the line exactly.
    #[test]
    fn metrics_verb_output_round_trips_through_strict_parsing(
        evaluated in 0u64..100_000,
        admitted in 0u64..100_000,
        shed in 0u64..1_000,
        batches in 0u64..10_000,
        latencies in proptest::collection::vec(1u64..10_000_000, 0..40),
        section_mask in 0usize..32,
    ) {
        let metrics = ServerMetrics::new();
        let registry = metrics.registry();
        registry.counter("evaluated").add(evaluated);
        registry.counter("admitted").add(admitted);
        registry.counter("shed").add(shed);
        registry.counter("batches_flushed").add(batches);
        let latency = registry.histogram("latency_us");
        let queue_wait = registry.histogram("queue_wait_us");
        let compute = registry.histogram("compute_us");
        for &us in &latencies {
            latency.record_us(us);
            queue_wait.record_us(us / 3);
            compute.record_us(us - us / 3);
        }
        metrics.record_verb("eval");
        metrics.record_verb("metrics");

        let all = [
            Section::Server,
            Section::Cache,
            Section::Store,
            Section::Histograms,
            Section::Cluster,
        ];
        let sections: Vec<Section> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| section_mask & (1 << i) != 0)
            .map(|(_, s)| *s)
            .collect();

        let engine = Engine::new();
        let snapshot = metrics.snapshot(3, &engine, None);
        let rendered = snapshot.render_metrics(42, &sections).render();
        let parsed = Json::parse(&rendered).expect("strict parse accepts the payload");
        prop_assert_eq!(parsed.render(), rendered);
        prop_assert_eq!(
            parsed.get("schema_version").and_then(Json::as_u64),
            Some(gbd_serve::METRICS_SCHEMA_VERSION)
        );
        // Deprecated alias payloads survive the same round trip.
        for legacy in [snapshot.render_stats(7), snapshot.render_store(8)] {
            let line = legacy.render();
            let back = Json::parse(&line).expect("legacy payload parses");
            prop_assert_eq!(back.render(), line);
            prop_assert_eq!(back.get("deprecated").and_then(Json::as_bool), Some(true));
        }
    }
}
