//! Quickstart: analyze a sparse sensor network and validate by simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparse_groupdet::prelude::*;

fn main() -> Result<(), CoreError> {
    // The paper's evaluation setup: 32 km x 32 km field, sensing range
    // 1 km, Pd = 0.9, sensing period 1 min, detection rule "at least 5
    // reports within 20 periods".
    let params = SystemParams::paper_defaults()
        .with_n_sensors(120)
        .with_speed(10.0);

    println!("Sparse sensor network:");
    println!(
        "  field           : {:.0} x {:.0} m",
        params.field_width(),
        params.field_height()
    );
    println!("  sensors         : {}", params.n_sensors());
    println!("  sensing range   : {:.0} m", params.sensing_range());
    println!("  target speed    : {:.0} m/s", params.speed());
    println!(
        "  detection rule  : >= {} reports within {} periods",
        params.k(),
        params.m_periods()
    );
    println!("  ms (DR traverse): {} periods", params.ms());

    // --- Analysis: the M-S-approach (milliseconds). -----------------------
    let analysis = ms_analyze(&params, &MsOptions::default())?;
    let p_analysis = analysis.detection_probability(params.k());
    println!("\nM-S-approach analysis:");
    println!("  detection probability : {p_analysis:.4}");
    println!("  retained mass         : {:.4}", analysis.retained_mass());
    println!(
        "  Eq (14) accuracy      : {:.4}",
        analysis.predicted_accuracy()
    );

    // Exact reference (the G -> N limit of the S-approach).
    let p_exact = exact::detection_probability(&params, params.k());
    println!("  exact reference       : {p_exact:.4}");

    // --- Validation: Monte Carlo simulation (the paper's §4). -------------
    let config = SimConfig::new(params).with_trials(4_000).with_seed(2008);
    let sim = run_simulation(&config);
    println!("\nSimulation ({} trials):", sim.trials);
    println!(
        "  detection probability : {:.4}  (95% CI [{:.4}, {:.4}])",
        sim.detection_probability, sim.confidence.lo, sim.confidence.hi
    );
    println!("  mean reports per trial: {:.2}", sim.report_counts.mean());

    let agree = sim.confidence.contains(p_exact);
    println!(
        "\nanalysis vs simulation: |diff| = {:.4} -> {}",
        (p_analysis - sim.detection_probability).abs(),
        if agree {
            "consistent (within 95% CI of the exact model)"
        } else {
            "outside CI"
        }
    );
    Ok(())
}
