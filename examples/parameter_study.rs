//! Parameter study: the analysis as a design tool.
//!
//! The paper's pitch is that the M-S-approach lets a designer explore the
//! parameter space "without running countless simulations or deploying
//! real systems". This example does exactly that for a procurement
//! question: *an agency must patrol a 32 km × 32 km strait and wants ≥ 95 %
//! probability of detecting an 8-knot (4 m/s) transit within 20 minutes.
//! How many sensors, and what do the alternatives cost?*
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example parameter_study
//! ```

use gbd_core::design::{max_field_side, required_sensing_range, required_sensors};
use gbd_core::false_alarm::{required_k, FalseAlarmModel};
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_core::time_to_detection;

fn main() -> Result<(), gbd_core::CoreError> {
    let base = SystemParams::paper_defaults().with_speed(4.0);
    let target = 0.95;

    println!("Design target: P(detect 4 m/s transit within 20 min) >= {target}\n");

    // Option A: buy sensors (Rs fixed at 1 km).
    match required_sensors(&base, target, 2_000)? {
        Some(pt) => println!(
            "Option A — more sensors at Rs = 1 km:      N = {:4.0}  (achieves {:.3})",
            pt.value, pt.achieved
        ),
        None => println!("Option A — unreachable with 2000 sensors"),
    }

    // Option B: better sensors (N fixed at the paper's 240).
    match required_sensing_range(&base.with_n_sensors(240), target, 200.0, 5_000.0)? {
        Some(pt) => println!(
            "Option B — longer range at N = 240:        Rs = {:4.0} m (achieves {:.3})",
            pt.value, pt.achieved
        ),
        None => println!("Option B — unreachable below Rs = 5 km"),
    }

    // Option C: shrink the patrol box for the current fleet.
    match max_field_side(&base.with_n_sensors(240), target, 10_000.0, 64_000.0)? {
        Some(pt) => println!(
            "Option C — smaller box with today's fleet: side = {:5.0} m (achieves {:.3})",
            pt.value, pt.achieved
        ),
        None => println!("Option C — infeasible even at 10 km"),
    }

    // Whatever the choice, pick k from the sensors' noise figure (the §6
    // future-work bound): require < 1% window false alarm probability.
    println!("\nThreshold k for a 1% false-alarm guarantee (count-based bound):");
    for pf in [1e-4, 5e-4, 1e-3] {
        let model = FalseAlarmModel::new(pf)?;
        let k = required_k(&base.with_n_sensors(400), &model, 0.01)?;
        println!("  node misfire rate {pf:>7.4}/period  ->  k >= {k}");
    }

    // And report the expected time-to-detection at the chosen point.
    let chosen = base.with_n_sensors(
        required_sensors(&base, target, 2_000)?
            .map(|p| p.value as usize)
            .unwrap_or(240),
    );
    let ttd = time_to_detection::analyze(&chosen, &MsOptions::default())?;
    println!(
        "\nAt the Option-A fleet size: P(detect) = {:.3}, mean detection period ≈ {:.1} \
         ({:.0} minutes into the crossing; arrival-attributed estimate).",
        ttd.detection_probability(),
        ttd.mean_period_given_detected().unwrap_or(f64::NAN),
        ttd.mean_period_given_detected().unwrap_or(f64::NAN) * chosen.period_s() / 60.0
    );
    println!("\nEvery number above came from the analytical model — no simulation runs.");
    Ok(())
}
