//! Undersea surveillance: the paper's ONR parameter scenario, end to end.
//!
//! Sizes a sparse acoustic sensor deployment for submarine detection:
//! coverage statistics, connectivity and latency of the acoustic multi-hop
//! network (verifying the paper's "reports arrive within one sensing
//! period" premise), detection probability for straight and varying-speed
//! targets, and the expected time to detection via the absorbing-chain
//! substrate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example undersea_surveillance
//! ```

use gbd_core::ms_approach::{analyze, MsOptions};
use gbd_core::params::SystemParams;
use gbd_core::varying_speed;
use gbd_field::coverage::expected_covered_fraction;
use gbd_markov::absorbing::analyze_absorbing;
use gbd_markov::counting::increment_matrix;
use gbd_net::latency::LatencyModel;
use gbd_sim::comm_check::check_deployment;
use gbd_stats::discrete::DiscreteDist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §4 settings: 32 km x 32 km patrol box, 1 km acoustic
    // sensing range, 6 km acoustic comm range, 1-minute periods, k = 5 of
    // M = 20. A submarine transits at ~4 m/s (8 knots).
    let params = SystemParams::paper_defaults()
        .with_n_sensors(150)
        .with_speed(4.0);

    println!("== Deployment sparseness ==");
    let covered = expected_covered_fraction(
        params.n_sensors(),
        params.sensing_range(),
        params.field_area(),
    );
    println!(
        "  {} sensors cover {:.0} % of the box; {:.0} % is void — a sparse network.",
        params.n_sensors(),
        100.0 * covered,
        100.0 * (1.0 - covered)
    );

    println!("\n== Acoustic multi-hop premise (paper §4, footnote 3) ==");
    let comm = check_deployment(&params, 6_000.0, &LatencyModel::undersea_acoustic(), 7);
    println!(
        "  {} / {} sensors route to the base station; mean {:.1} hops, max {:.0}.",
        comm.delivered,
        comm.sensors,
        comm.hops.mean(),
        comm.hops.max()
    );
    println!(
        "  End-to-end acoustic latency: mean {:.1} s, max {:.1} s (deadline {} s).",
        comm.latency_s.mean(),
        comm.latency_s.max(),
        params.period_s()
    );
    println!(
        "  {:.1} % of sensors meet the one-period deadline -> the analysis premise holds.",
        100.0 * comm.deadline_fraction()
    );

    println!("\n== Detection probability (M-S-approach) ==");
    let r = analyze(&params, &MsOptions::default())?;
    println!(
        "  steady 4 m/s transit : {:.3}",
        r.detection_probability(params.k())
    );
    let (lo, hi) = varying_speed::detection_probability_band(
        &params,
        2.0,
        8.0,
        params.k(),
        &MsOptions::default(),
    )?;
    println!("  speed in [2, 8] m/s  : between {lo:.3} and {hi:.3}");
    // A sprint-and-drift profile: loiter, sprint, loiter.
    let mut speeds = vec![2.0; 20];
    for s in speeds.iter_mut().take(12).skip(6) {
        *s = 8.0;
    }
    let sprint = varying_speed::analyze_speeds(&params, &speeds, &MsOptions::default())?;
    println!(
        "  sprint-and-drift     : {:.3}",
        sprint.detection_probability(params.k())
    );

    println!("\n== Expected time to detection (absorbing-chain extension) ==");
    // Make "k reports accumulated" absorbing and ask for the expected
    // number of periods, using the body-stage increment as the per-period
    // report process of a long patrol.
    let plan = gbd_core::ms_approach::stage_plan(&params);
    let body = gbd_core::report_dist::stage_distribution(
        &plan.body,
        params.field_area(),
        params.n_sensors(),
        params.pd(),
        3,
    );
    let body = normalize(body);
    let t = increment_matrix(&body, params.k());
    let absorbing = analyze_absorbing(&t)?;
    // State 0 is "no reports yet"; expected steps to reach state k.
    println!(
        "  From first contact, E[periods until {} reports] ≈ {:.1} ({:.0} minutes).",
        params.k(),
        absorbing.expected_steps[0],
        absorbing.expected_steps[0] * params.period_s() / 60.0
    );
    Ok(())
}

/// The truncated body-stage distribution normalized to a proper pmf for
/// the absorbing-chain computation.
fn normalize(d: DiscreteDist) -> DiscreteDist {
    d.normalized()
}
