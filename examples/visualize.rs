//! Renders simulation scenarios to SVG: the paper's Figures 1–4, drawn
//! from live simulation state instead of schematics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example visualize
//! ```
//!
//! Writes `results/scenario_sparse.svg` (a detected crossing) and
//! `results/scenario_noisy.svg` (false alarms alongside a true track).

use gbd_core::params::SystemParams;
use gbd_field::deployment::{Deployer, UniformRandom};
use gbd_field::field::{BoundaryPolicy, SensorField};
use gbd_geometry::point::Aabb;
use gbd_sim::config::SimConfig;
use gbd_sim::engine::run_trial;
use gbd_sim::render::{render_trial, RenderOptions};
use gbd_stats::rng::rng_stream;

fn render_to(path: &str, config: &SimConfig, trial: u64) -> std::io::Result<()> {
    let outcome = run_trial(config, trial);
    // Rebuild the deployment the engine drew (same derived stream).
    let params = &config.params;
    let extent = Aabb::from_extent(params.field_width(), params.field_height());
    let mut rng = rng_stream(config.seed, trial);
    let positions = UniformRandom.deploy(params.n_sensors(), &extent, &mut rng);
    let field = SensorField::new(extent, positions, BoundaryPolicy::Torus);
    let opts = RenderOptions {
        sensing_range: params.sensing_range(),
        ..RenderOptions::default()
    };
    let svg = render_trial(&field, &outcome, &opts);
    std::fs::create_dir_all("results")?;
    std::fs::write(path, svg)?;
    println!(
        "{path}: N = {}, {} true reports{} -> {}",
        params.n_sensors(),
        outcome.true_reports,
        if outcome.false_reports > 0 {
            format!(" + {} false alarms", outcome.false_reports)
        } else {
            String::new()
        },
        if outcome.detected(params.k()) {
            "DETECTED"
        } else {
            "missed"
        }
    );
    Ok(())
}

fn main() -> std::io::Result<()> {
    // A sparse field with a crossing target: void areas are obvious, the
    // track threads between sensing disks, rings mark firing sensors.
    let sparse = SimConfig::new(SystemParams::paper_defaults().with_n_sensors(100))
        .with_trials(1)
        .with_seed(7);
    render_to("results/scenario_sparse.svg", &sparse, 4)?;

    // The same field under sensor noise: hollow purple rings are false
    // alarms scattered off-track — the pattern group based detection
    // filters out.
    let noisy = SimConfig::new(SystemParams::paper_defaults().with_n_sensors(100))
        .with_trials(1)
        .with_seed(7)
        .with_false_alarm_rate(0.005);
    render_to("results/scenario_noisy.svg", &noisy, 4)?;

    println!("\nOpen the SVGs in a browser to see the scenario geometry.");
    Ok(())
}
