//! Group based detection as a false-alarm filter.
//!
//! The paper's core motivation (§1): "Only the detection reports generated
//! in a sequence, which can be mapped to a possible target track, are
//! recognized as true target detections. In this case, most false alarms
//! are filtered out." This example measures that claim with the concrete
//! velocity-feasibility track filter:
//!
//! 1. with a real target and noisy sensors, the filter keeps (and slightly
//!    helps) detection;
//! 2. with *no* target, naive report counting alarms constantly while the
//!    filter suppresses almost everything.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example false_alarm_filtering
//! ```

use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::false_alarm::{run_no_target, run_with_filter};

fn main() {
    let params = SystemParams::paper_defaults().with_n_sensors(180);
    let trials = 400;

    println!("Node-level false alarms: each sensor misfires independently each period.");
    println!(
        "Detection rule: >= {} track-consistent reports within {} periods.\n",
        params.k(),
        params.m_periods()
    );

    println!("== Target present ==");
    println!(
        "  node FA rate | P(detect), true reports only | P(detect), filtered (true+noise)"
    );
    for far in [0.0, 0.0005, 0.002] {
        let cfg = SimConfig::new(params)
            .with_trials(trials)
            .with_seed(31)
            .with_false_alarm_rate(far);
        let r = run_with_filter(&cfg);
        println!(
            "     {:6.2} % |            {:.3}             |              {:.3}",
            100.0 * far,
            r.detections_true_only as f64 / r.trials as f64,
            r.detections_filtered as f64 / r.trials as f64,
        );
    }
    println!("  (noise can only extend feasible chains: the filtered column never drops)");

    println!("\n== No target: system-level false alarm rate ==");
    println!(
        "  node FA rate | naive counting alarms | track-filtered alarms | mean noise reports"
    );
    for far in [0.0005, 0.001, 0.002, 0.005] {
        let cfg = SimConfig::new(params)
            .with_trials(trials)
            .with_seed(77)
            .with_false_alarm_rate(far);
        let r = run_no_target(&cfg);
        println!(
            "     {:6.2} % |        {:5.1} %        |        {:5.1} %        | {:8.1}",
            100.0 * far,
            100.0 * r.naive_alarms as f64 / r.trials as f64,
            100.0 * r.filtered_alarms as f64 / r.trials as f64,
            r.mean_false_reports,
        );
    }
    println!("\nNaive counting is useless once the window collects ~k noise reports;");
    println!("requiring a velocity-feasible track restores a low system-level rate,");
    println!("which is exactly why deployed systems use group based detection.");
}
