//! Border surveillance: the paper's motivating camera-network scenario.
//!
//! "thousands of cameras can be deployed at the border to detect illegal
//! border crossers … deploy a sparse sensor network with much fewer
//! cameras, which partially covers the border with void sensing areas
//! allowed."
//!
//! This example sizes a sparse camera deployment along a border strip:
//! it sweeps the camera count and the report threshold `k`, showing the
//! detection/false-alarm trade-off that drives the choice of `k`, and uses
//! the §4 h-node extension to require corroboration from distinct cameras.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example border_surveillance
//! ```

use gbd_core::extension_h;
use gbd_core::ms_approach::MsOptions;
use gbd_core::params::SystemParams;
use gbd_sim::config::SimConfig;
use gbd_sim::false_alarm::run_no_target;

fn main() -> Result<(), gbd_core::CoreError> {
    // A 40 km border strip, 8 km deep. Cameras see ~800 m (obstacles,
    // night). A person walks at ~1.5 m/s; decision window 30 minutes.
    let base = SystemParams::new(
        40_000.0, // width along the border
        8_000.0,  // depth of the monitored strip
        0,        // sensors: swept below
        800.0,    // camera detection range
        1.5,      // walking speed
        60.0,     // 1-minute sensing periods
        0.85,     // per-period detection probability
        30,       // decision window: 30 periods
        4,        // threshold k, revisited below
    )?;

    println!(
        "== Detection probability vs number of cameras (k = {}) ==",
        base.k()
    );
    for n in [100usize, 200, 300, 400, 600] {
        let params = base.with_n_sensors(n);
        let r = gbd_core::ms_approach::analyze(&params, &MsOptions::default())?;
        println!(
            "  {n:4} cameras -> P(detect crosser) = {:.3}",
            r.detection_probability(params.k())
        );
    }

    // --- Choosing k: detection vs noise robustness. ------------------------
    // The paper: "The value of k is chosen based on the system's false
    // alarm rate." Simulate a noisy night (node-level false alarms) with no
    // crosser present and compare system-level false alarm rates.
    let n = 400;
    println!("\n== Choosing k at {n} cameras (node false-alarm rate 0.1%/period) ==");
    println!("   k | P(detect crosser) | system false alarms (naive) | (track-filtered)");
    for k in 1..=6 {
        let params = base.with_n_sensors(n).with_k(k);
        let detect = gbd_core::ms_approach::analyze(&params, &MsOptions::default())?
            .detection_probability(k);
        let noise_cfg = SimConfig::new(params)
            .with_trials(300)
            .with_seed(1876)
            .with_false_alarm_rate(0.001);
        let noise = run_no_target(&noise_cfg);
        println!(
            "   {k} |       {detect:.3}       |          {:5.1} %           |     {:5.1} %",
            100.0 * noise.naive_alarms as f64 / noise.trials as f64,
            100.0 * noise.filtered_alarms as f64 / noise.trials as f64,
        );
    }

    // --- Corroboration: require k reports from h distinct cameras. ---------
    println!("\n== §4 extension: >= k reports from >= h distinct cameras (N = {n}, k = 4) ==");
    let params = base.with_n_sensors(n);
    let joint = extension_h::analyze(&params, 4, &MsOptions::default())?;
    for h in 1..=4 {
        println!(
            "  h = {h}: P = {:.3}",
            joint.detection_probability(params.k(), h)
        );
    }
    println!("\nA slow walker lingers in one camera's view, so single-camera");
    println!("corroboration (h = 1) is much easier than multi-camera (h = 4):");
    println!("the operator pays detection probability for evidence diversity.");
    Ok(())
}
