#!/usr/bin/env bash
# Regenerates every figure, ablation and extension experiment of the
# reproduction. Full-resolution Monte Carlo (10 000 trials/point) takes a
# few minutes on a modern machine; pass a trial count to reduce it:
#
#   scripts/reproduce_all.sh 2000
set -euo pipefail
cd "$(dirname "$0")/.."
TRIALS="${1:-10000}"

echo "== building =="
cargo build --release --workspace -q

run() {
    echo
    echo "=============================================================="
    echo "== $1"
    echo "=============================================================="
    cargo run -q --release -p gbd-bench --bin "$1" -- --trials "$TRIALS"
}

# The paper's figures.
run fig8
run fig9a
run fig9b
run fig9c
run timing_table

# Ablations and extensions.
run ablation_truncation
run ablation_boundary
run ablation_poisson
run ablation_deployment
run false_alarm_study
run h_extension
run varying_speed
run comm_check
run t_approach_explosion
run time_to_detection
run k_bound
run design_space
run tracking_quality
run lifetime_tradeoff
run exposure_model

echo
echo "CSV outputs are in results/."
