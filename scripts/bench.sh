#!/usr/bin/env bash
# Benchmark trajectory for the hot analytical path.
#
#   scripts/bench.sh                 full run: criterion kernel pairs plus
#                                    the perf_trajectory legs, writing
#                                    results/BENCH_pr4.json and the
#                                    sim-grid leg's results/BENCH_pr9.json
#   scripts/bench.sh --quick         trajectory legs only, reduced grids
#                                    (the smoke configuration check.sh
#                                    --bench-smoke uses)
#   scripts/bench.sh --out <dir>     write the JSON reports elsewhere
#
# The trajectory binary asserts bit-identity between the baseline and
# optimized legs before reporting any number, so a successful run is also
# a correctness check.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
out=results
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --out) out="${2:?--out needs a directory}"; shift 2 ;;
    *) echo "unknown argument: $1 (expected --quick or --out <dir>)" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release (trajectory binary)"
cargo build --release -q -p gbd-bench --bin perf_trajectory

if [ "$quick" -eq 0 ]; then
  echo "==> criterion kernel pairs (cargo bench --bench kernels)"
  cargo bench -q -p gbd-bench --bench kernels
fi

echo "==> perf trajectory (fig8 cold, engine cold/warm, thread scaling, sim grid)"
if [ "$quick" -eq 1 ]; then
  target/release/perf_trajectory --quick --out "$out"
else
  target/release/perf_trajectory --out "$out"
fi
