#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the complete test
# suite. Run before every push; CI mirrors these steps.
#
#   scripts/check.sh           the standard gate
#   scripts/check.sh --chaos   additionally run the fault-injection suite
#                              under three seeds (deterministic per seed)
set -euo pipefail
cd "$(dirname "$0")/.."

chaos=0
for arg in "$@"; do
  case "$arg" in
    --chaos) chaos=1 ;;
    *) echo "unknown argument: $arg (expected --chaos)" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The engine hosts the panic-isolation boundary: an unwrap/expect on a lock
# or join result there would turn one poisoned shard into a crashed batch.
# The serve crate is a long-lived process fed untrusted bytes, so it gets
# the same treatment. Non-test code must stay free of both (tests opt out
# via cfg_attr(test) in the crate root).
for crate in gbd-engine gbd-serve; do
  echo "==> cargo clippy -p $crate (unwrap/expect ban)"
  cargo clippy -p "$crate" --all-targets --no-deps -- \
    -D warnings -W clippy::unwrap_used -W clippy::expect_used
done

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Serve smoke: start the server on an ephemeral port, round-trip a mixed
# analytical+simulation batch through the load generator, assert the
# coalescer actually batched (factor > 1), and require a clean drain on
# the shutdown verb (`wait` fails the gate if the server exits nonzero).
echo "==> serve smoke (loadgen round trip + clean shutdown)"
cargo build --release -q -p gbd-cli -p gbd-bench --bin groupdet --bin loadgen
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
target/release/groupdet serve --addr 127.0.0.1:0 --json >"$smoke_dir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$smoke_dir/serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "serve smoke: server never reported a listening address" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
target/release/loadgen --addr "$addr" --clients 4 --requests 32 \
  --sim-every 8 --out "$smoke_dir" --assert-coalescing --shutdown
wait "$serve_pid"

if [ "$chaos" -eq 1 ]; then
  for seed in 1 7 2008; do
    echo "==> chaos suite (GBD_CHAOS_SEED=$seed)"
    GBD_CHAOS_SEED=$seed cargo test -q --test resilience
  done
fi

echo "check.sh: all gates passed"
