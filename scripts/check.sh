#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the complete test
# suite. Run before every push; CI mirrors these three steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "check.sh: all gates passed"
