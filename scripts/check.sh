#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the complete test
# suite. Run before every push; CI mirrors these steps.
#
#   scripts/check.sh                the standard gate
#   scripts/check.sh --chaos        additionally run the fault-injection
#                                   suite under three seeds (deterministic
#                                   per seed)
#   scripts/check.sh --bench-smoke  additionally run the quick benchmark
#                                   trajectory, validate its JSON schema,
#                                   and fail on a >25% regression of the
#                                   derived speedup ratios against the
#                                   committed results/BENCH_pr4.json
#   scripts/check.sh --sim-bench-smoke  additionally run the quick
#                                   sim-grid leg (CSR + focused rebuild vs
#                                   the nested-Vec oracle, which also
#                                   proves id-for-id query identity),
#                                   validate its JSON schema, and fail on
#                                   a >50% regression of the N=10^5
#                                   per-trial speedup against the
#                                   committed results/BENCH_pr9.json
#   scripts/check.sh --store-smoke  additionally crash (SIGABRT mid-append,
#                                   via the gbd-store `chaos` feature) a
#                                   store-backed warm run, then prove the
#                                   reopened store recovers its valid
#                                   prefix and serves bit-identical rows
#   scripts/check.sh --obs-smoke    additionally drive mixed load against a
#                                   store-backed server with the Prometheus
#                                   endpoint bound, assert coalescing, the
#                                   queue-wait+compute≈latency split, and
#                                   watch-delta telescoping via loadgen,
#                                   then scrape /metrics and cross-check it
#   scripts/check.sh --cluster-smoke additionally boot a router over two
#                                   shards plus a replicated standby on
#                                   ephemeral ports, drive mixed load
#                                   through the router, SIGKILL one shard
#                                   mid-run, and require zero wrong
#                                   answers (bit-identity against a local
#                                   engine), at least one failover, and a
#                                   clean drain of every survivor
#   scripts/check.sh --stream-smoke additionally boot a server on an
#                                   ephemeral port, drive streaming
#                                   detection sessions via loadgen
#                                   --report-stream, require at least one
#                                   detection event with report/event
#                                   counts reconciled against the stream
#                                   metrics section, then prove a drain
#                                   with a session still open reaps it
#                                   and exits cleanly
set -euo pipefail
cd "$(dirname "$0")/.."

chaos=0
bench_smoke=0
sim_bench_smoke=0
store_smoke=0
obs_smoke=0
cluster_smoke=0
stream_smoke=0
for arg in "$@"; do
  case "$arg" in
    --chaos) chaos=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --sim-bench-smoke) sim_bench_smoke=1 ;;
    --store-smoke) store_smoke=1 ;;
    --obs-smoke) obs_smoke=1 ;;
    --cluster-smoke) cluster_smoke=1 ;;
    --stream-smoke) stream_smoke=1 ;;
    *) echo "unknown argument: $arg (expected --chaos, --bench-smoke, --sim-bench-smoke, --store-smoke, --obs-smoke, --cluster-smoke, or --stream-smoke)" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The engine hosts the panic-isolation boundary: an unwrap/expect on a lock
# or join result there would turn one poisoned shard into a crashed batch.
# The serve crate is a long-lived process fed untrusted bytes, the store
# crate parses arbitrary on-disk bytes after a crash, and the obs crate's
# ticker/exposition threads must outlive any poisoned lock, so they get
# the same treatment. Non-test code must stay free of both (tests opt out
# via cfg_attr(test) in the crate root). The router fronts every shard, so
# a panic there takes down the whole cluster's ingress — same ban. The
# stream crate's detector runs inside long-lived serving sessions fed
# arbitrary report sequences, so it joins too.
for crate in gbd-engine gbd-serve gbd-store gbd-obs gbd-router gbd-stream; do
  echo "==> cargo clippy -p $crate (unwrap/expect ban)"
  cargo clippy -p "$crate" --all-targets --no-deps -- \
    -D warnings -W clippy::unwrap_used -W clippy::expect_used
done

# The hot analytical path promises allocation discipline: no needless
# intermediate collections, no redundant clones, no oversized stack
# buffers in the kernels the scratch arenas exist to serve. The field
# crate joins the list because its CSR query path promises zero
# steady-state heap allocations per trial.
for crate in gbd-core gbd-markov gbd-engine gbd-field; do
  echo "==> cargo clippy -p $crate (allocation-discipline lints)"
  cargo clippy -p "$crate" --all-targets --no-deps -- \
    -D warnings -W clippy::needless_collect -W clippy::redundant_clone \
    -W clippy::large_stack_arrays
done

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Serve smoke: start the server on an ephemeral port, round-trip a mixed
# analytical+simulation batch through the load generator, assert the
# coalescer actually batched (factor > 1), and require a clean drain on
# the shutdown verb (`wait` fails the gate if the server exits nonzero).
echo "==> serve smoke (loadgen round trip + clean shutdown)"
cargo build --release -q -p gbd-cli -p gbd-bench --bin groupdet --bin loadgen
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
target/release/groupdet serve --addr 127.0.0.1:0 --json >"$smoke_dir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$smoke_dir/serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "serve smoke: server never reported a listening address" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
target/release/loadgen --addr "$addr" --clients 4 --requests 32 \
  --sim-every 8 --out "$smoke_dir" --assert-coalescing --shutdown
wait "$serve_pid"

if [ "$bench_smoke" -eq 1 ]; then
  # Quick trajectory run into the temp dir, then: (1) schema validation,
  # (2) regression gate on the derived speedup *ratios* — wall-clock
  # times vary across hosts, but "flat kernels beat the baseline by ≥2×"
  # and "warm beats cold" are machine-independent claims, so a >25% drop
  # of either ratio against the committed baseline fails the gate.
  echo "==> bench smoke (scripts/bench.sh --quick + schema + regression gate)"
  scripts/bench.sh --quick --out "$smoke_dir"
  python3 - "$smoke_dir/BENCH_pr4.json" results/BENCH_pr4.json <<'PY'
import json, sys

current_path, committed_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)

def fail(msg):
    print(f"bench smoke: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

if current.get("bench") != "pr4_perf_trajectory":
    fail(f"unexpected bench id {current.get('bench')!r}")
if not isinstance(current.get("cores"), int) or current["cores"] < 1:
    fail("cores must be a positive integer")
entries = current.get("entries")
if not isinstance(entries, list) or not entries:
    fail("entries must be a non-empty list")
for e in entries:
    for key, kind in (("name", str), ("mode", str), ("impl", str)):
        if not isinstance(e.get(key), kind):
            fail(f"entry {e!r}: {key} must be {kind.__name__}")
    if not (isinstance(e.get("wall_ms"), (int, float)) and e["wall_ms"] > 0):
        fail(f"entry {e!r}: wall_ms must be positive")
    if not (isinstance(e.get("points"), int) and e["points"] > 0):
        fail(f"entry {e!r}: points must be positive")
names = {(e["name"], e["mode"], e["impl"]) for e in entries}
for required in (("fig8_sweep", "cold", "baseline"), ("fig8_sweep", "cold", "optimized"),
                 ("engine_sweep", "cold", "optimized"), ("engine_sweep", "warm", "optimized")):
    if required not in names:
        fail(f"missing entry {required}")
derived = current.get("derived", {})
for key in ("fig8_cold_speedup", "engine_warm_speedup", "thread_scaling"):
    if not (isinstance(derived.get(key), (int, float)) and derived[key] > 0):
        fail(f"derived.{key} must be positive")
if derived.get("bit_identical") is not True:
    fail("derived.bit_identical must be true")

try:
    with open(committed_path) as f:
        committed = json.load(f)
except FileNotFoundError:
    print("bench smoke: no committed baseline yet; schema check only")
    sys.exit(0)
for key in ("fig8_cold_speedup", "engine_warm_speedup"):
    base = committed.get("derived", {}).get(key)
    now = derived[key]
    if isinstance(base, (int, float)) and base > 0 and now < 0.75 * base:
        fail(f"{key} regressed >25%: {now:.2f}x vs committed {base:.2f}x")
    print(f"bench smoke: {key} {now:.2f}x (committed {base if base else '-'}x)")
print("bench smoke: ok")
PY
fi

if [ "$sim_bench_smoke" -eq 1 ]; then
  # Quick sim-grid leg into the temp dir. The binary itself asserts the
  # CSR field answers every query id-for-id identically to the retained
  # nested-Vec oracle and that query cost grows sub-linearly in N; the
  # gate below adds (1) schema validation and (2) a regression check on
  # the N=10^5 per-trial speedup. The 50% tolerance (vs 25% for the
  # analytical legs) reflects that the oracle side is allocation-bound
  # and so much noisier on shared vCPUs.
  echo "==> sim bench smoke (perf_trajectory --sim-only --quick + regression gate)"
  cargo build --release -q -p gbd-bench --bin perf_trajectory
  target/release/perf_trajectory --sim-only --quick --out "$smoke_dir"
  python3 - "$smoke_dir/BENCH_pr9.json" results/BENCH_pr9.json <<'PY'
import json, sys

current_path, committed_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)

def fail(msg):
    print(f"sim bench smoke: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

if current.get("bench") != "pr9_sim_grid":
    fail(f"unexpected bench id {current.get('bench')!r}")
if not isinstance(current.get("cores"), int) or current["cores"] < 1:
    fail("cores must be a positive integer")
entries = current.get("entries")
if not isinstance(entries, list) or not entries:
    fail("entries must be a non-empty list")
for e in entries:
    for key, kind in (("name", str), ("mode", str), ("impl", str)):
        if not isinstance(e.get(key), kind):
            fail(f"entry {e!r}: {key} must be {kind.__name__}")
    if not (isinstance(e.get("wall_ms"), (int, float)) and e["wall_ms"] > 0):
        fail(f"entry {e!r}: wall_ms must be positive")
names = {(e["name"], e["mode"], e["impl"]) for e in entries}
for required in (("sim_grid", "n100000", "oracle_nested"),
                 ("sim_grid", "n100000", "csr_focus"),
                 ("sim_grid", "n100000", "csr_query_only")):
    if required not in names:
        fail(f"missing entry {required}")
derived = current.get("derived", {})
key = "sim_speedup_n100000"
if not (isinstance(derived.get(key), (int, float)) and derived[key] > 0):
    fail(f"derived.{key} must be positive")
if derived.get("bit_identical") is not True:
    fail("derived.bit_identical must be true")
growth = derived.get("query_growth")
ratio = derived.get("query_growth_n_ratio")
if not (isinstance(growth, (int, float)) and isinstance(ratio, (int, float))
        and growth < ratio):
    fail(f"query growth {growth} is not sub-linear in the N ratio {ratio}")

try:
    with open(committed_path) as f:
        committed = json.load(f)
except FileNotFoundError:
    print("sim bench smoke: no committed baseline yet; schema check only")
    sys.exit(0)
base = committed.get("derived", {}).get(key)
now = derived[key]
if isinstance(base, (int, float)) and base > 0 and now < 0.5 * base:
    fail(f"{key} regressed >50%: {now:.2f}x vs committed {base:.2f}x")
print(f"sim bench smoke: {key} {now:.2f}x (committed {base if base else '-'}x)")
print("sim bench smoke: ok")
PY
fi

if [ "$store_smoke" -eq 1 ]; then
  # Crash-safety proof, end to end through the CLI:
  #   1. warm a fresh store A; its rows are the ground truth
  #   2. warm a fresh store B with the chaos hook armed — the process
  #      SIGABRTs after 3 appends, mid-frame (half a record on disk)
  #   3. `store verify` must flag B's torn tail and exit nonzero
  #   4. re-running `store warm` on B must recover the valid prefix
  #      (partial warm start) and print rows bit-identical to A's
  #   5. B then verifies clean (recovery truncated the torn tail)
  # The chaos hook is a cargo feature compiled into this binary only; it
  # stays inert unless GBD_STORE_CHAOS_ABORT_AFTER is set.
  echo "==> store smoke (crash mid-append, recover, bit-identical warm start)"
  cargo build --release -q -p gbd-cli --features gbd-store/chaos --bin groupdet
  store_a="$smoke_dir/clean.gbdstore"
  store_b="$smoke_dir/torn.gbdstore"
  target/release/groupdet store warm --path "$store_a" --json >"$smoke_dir/warm_a.json"
  if GBD_STORE_CHAOS_ABORT_AFTER=3 target/release/groupdet store warm \
      --path "$store_b" --json >/dev/null 2>"$smoke_dir/chaos.log"; then
    echo "store smoke: chaos run unexpectedly survived" >&2
    exit 1
  fi
  if target/release/groupdet store verify --path "$store_b" --json >"$smoke_dir/verify_torn.json"; then
    echo "store smoke: verify missed the torn tail" >&2
    exit 1
  fi
  target/release/groupdet store warm --path "$store_b" --json >"$smoke_dir/warm_b.json"
  target/release/groupdet store verify --path "$store_b" --json >"$smoke_dir/verify_clean.json"
  python3 - "$smoke_dir/warm_a.json" "$smoke_dir/warm_b.json" "$smoke_dir/verify_torn.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f: clean = json.load(f)
with open(sys.argv[2]) as f: recovered = json.load(f)
with open(sys.argv[3]) as f: torn = json.load(f)

def fail(msg):
    print(f"store smoke: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

if torn.get("torn_bytes", 0) <= 0:
    fail("verify reported no torn bytes on the crashed store")
store = recovered.get("store", {})
if store.get("loaded_records", 0) <= 0:
    fail("recovery loaded nothing — the valid prefix was lost")
if store.get("torn_bytes_discarded", 0) <= 0:
    fail("recovery discarded no torn bytes")
rows_a, rows_b = clean.get("rows"), recovered.get("rows")
if not rows_a or rows_a != rows_b:
    fail(f"recovered rows diverge from the clean store's: {rows_a} vs {rows_b}")
print(f"store smoke: ok ({store['loaded_records']} records recovered, "
      f"{store['torn_bytes_discarded']} torn bytes discarded, rows bit-identical)")
PY
fi

if [ "$obs_smoke" -eq 1 ]; then
  # Observability proof, end to end against the release binary:
  #   1. boot a store-backed server with the exposition endpoint bound and
  #      a 250 ms delta window
  #   2. loadgen drives mixed load and asserts coalescing happened, the
  #      queue-wait + compute histograms sum to the latency histogram
  #      (metrics verb), and a replaying watch client's windowed deltas
  #      telescope exactly to the lifetime totals
  #   3. scrape /metrics and cross-check the same identities from the
  #      Prometheus text: nonzero evaluated and store spills, and the
  #      latency-split sum within 25%
  #   4. clean drain via the shutdown verb
  echo "==> obs smoke (metrics verb + watch client + /metrics scrape)"
  target/release/groupdet serve --addr 127.0.0.1:0 --metrics-addr 127.0.0.1:0 \
    --obs-window-ms 250 --store "$smoke_dir/obs.gbdstore" --json \
    >"$smoke_dir/obs_serve.log" &
  obs_pid=$!
  obs_addr=""
  scrape_addr=""
  for _ in $(seq 1 100); do
    obs_addr=$(sed -n 's/.*"event":"listening","addr":"\([^"]*\)".*/\1/p' "$smoke_dir/obs_serve.log")
    scrape_addr=$(sed -n 's/.*"metrics_addr":"\([^"]*\)".*/\1/p' "$smoke_dir/obs_serve.log")
    [ -n "$obs_addr" ] && [ -n "$scrape_addr" ] && break
    sleep 0.1
  done
  if [ -z "$obs_addr" ] || [ -z "$scrape_addr" ]; then
    echo "obs smoke: server never reported both listening addresses" >&2
    kill "$obs_pid" 2>/dev/null || true
    exit 1
  fi
  target/release/loadgen --addr "$obs_addr" --clients 4 --requests 32 \
    --sim-every 8 --out "$smoke_dir" \
    --assert-coalescing --assert-split --watch-windows 6
  python3 - "http://$scrape_addr/metrics" <<'PY'
import sys, urllib.request

text = urllib.request.urlopen(sys.argv[1], timeout=10).read().decode()

def fail(msg):
    print(f"obs smoke: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

values = {}
for line in text.splitlines():
    if line.startswith("#") or not line.strip() or "{" in line:
        continue
    name, _, value = line.partition(" ")
    try:
        values[name] = float(value)
    except ValueError:
        pass

evaluated = values.get("gbd_evaluated_total", 0)
if evaluated <= 0:
    fail("gbd_evaluated_total is zero — the load never registered")
if values.get("gbd_store_spills_total", 0) <= 0:
    fail("gbd_store_spills_total is zero — the store saw no spills")
latency = values.get("gbd_latency_us_sum", 0)
wait = values.get("gbd_queue_wait_us_sum", 0)
compute = values.get("gbd_compute_us_sum", 0)
if latency <= 0:
    fail("gbd_latency_us_sum is zero")
if abs(wait + compute - latency) > 0.25 * latency:
    fail(f"latency split off: wait {wait} + compute {compute} vs latency {latency}")
if values.get("gbd_latency_us_count", 0) != evaluated:
    fail("latency histogram count disagrees with gbd_evaluated_total")
print(f"obs smoke: scrape ok ({int(evaluated)} evaluated, "
      f"{int(values['gbd_store_spills_total'])} spills, "
      f"split {wait:.0f}+{compute:.0f} ≈ {latency:.0f} µs)")
PY
  python3 - "$obs_addr" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=10) as s:
    s.sendall(b'{"id":0,"verb":"shutdown"}\n')
    ack = json.loads(s.makefile().readline())
if ack.get("shutting_down") is not True:
    print("obs smoke: FAILED: shutdown not acknowledged", file=sys.stderr)
    sys.exit(1)
PY
  wait "$obs_pid"
  echo "obs smoke: ok"
fi

if [ "$cluster_smoke" -eq 1 ]; then
  # Failover proof, end to end against the release binaries:
  #   1. boot a standby (own store + replica listener), a shard that
  #      replicates its store appends to it, a second plain shard, and a
  #      router hashing across both with the standby pinned to slot 0
  #   2. loadgen --router drives paced mixed load through the router
  #   3. once the standby has applied replicated records, SIGKILL the
  #      replicating shard mid-run — no drain, no snapshot
  #   4. loadgen must exit clean: every request answered, every answer
  #      bit-identical to an in-process single-server evaluation
  #   5. the router must have recorded a failover, and every surviving
  #      process must drain cleanly on the shutdown verb
  echo "==> cluster smoke (router + 2 shards + standby, SIGKILL mid-run)"
  target/release/groupdet serve --addr 127.0.0.1:0 \
    --store "$smoke_dir/standby.gbdstore" --replica-listen 127.0.0.1:0 \
    --shard-id standby0 --json >"$smoke_dir/standby.log" &
  standby_pid=$!
  standby_addr=""
  replica_addr=""
  for _ in $(seq 1 100); do
    standby_addr=$(sed -n 's/.*"event":"listening","addr":"\([^"]*\)".*/\1/p' "$smoke_dir/standby.log")
    replica_addr=$(sed -n 's/.*"replica_addr":"\([^"]*\)".*/\1/p' "$smoke_dir/standby.log")
    [ -n "$standby_addr" ] && [ -n "$replica_addr" ] && break
    sleep 0.1
  done
  if [ -z "$standby_addr" ] || [ -z "$replica_addr" ]; then
    echo "cluster smoke: standby never reported its addresses" >&2
    kill "$standby_pid" 2>/dev/null || true
    exit 1
  fi
  target/release/groupdet serve --addr 127.0.0.1:0 \
    --store "$smoke_dir/shard0.gbdstore" --shard-id shard0 \
    --replicate-to "$replica_addr" --json >"$smoke_dir/shard0.log" &
  shard0_pid=$!
  target/release/groupdet serve --addr 127.0.0.1:0 --shard-id shard1 \
    --json >"$smoke_dir/shard1.log" &
  shard1_pid=$!
  shard0_addr=""
  shard1_addr=""
  for _ in $(seq 1 100); do
    shard0_addr=$(sed -n 's/.*"event":"listening","addr":"\([^"]*\)".*/\1/p' "$smoke_dir/shard0.log")
    shard1_addr=$(sed -n 's/.*"event":"listening","addr":"\([^"]*\)".*/\1/p' "$smoke_dir/shard1.log")
    [ -n "$shard0_addr" ] && [ -n "$shard1_addr" ] && break
    sleep 0.1
  done
  if [ -z "$shard0_addr" ] || [ -z "$shard1_addr" ]; then
    echo "cluster smoke: a shard never reported its address" >&2
    kill "$standby_pid" "$shard0_pid" "$shard1_pid" 2>/dev/null || true
    exit 1
  fi
  target/release/groupdet route --addr 127.0.0.1:0 \
    --shard "$shard0_addr" --shard "$shard1_addr" \
    --standby "0:$standby_addr" --heartbeat-ms 200 \
    --json >"$smoke_dir/router.log" &
  router_pid=$!
  router_addr=""
  for _ in $(seq 1 100); do
    router_addr=$(sed -n 's/.*"event":"listening","addr":"\([^"]*\)".*/\1/p' "$smoke_dir/router.log")
    [ -n "$router_addr" ] && break
    sleep 0.1
  done
  if [ -z "$router_addr" ]; then
    echo "cluster smoke: router never reported its address" >&2
    kill "$standby_pid" "$shard0_pid" "$shard1_pid" "$router_pid" 2>/dev/null || true
    exit 1
  fi
  # Paced so the kill lands mid-run (4x200 @ 500 req/s ≈ 1.6 s of load).
  target/release/loadgen --addr "$router_addr" --router --clients 4 \
    --requests 200 --rate 500 --sim-every 10 --out "$smoke_dir" \
    --json >"$smoke_dir/cluster_load.json" &
  load_pid=$!
  # Kill only once the standby holds replicated records, so the takeover
  # is provably warm.
  python3 - "$standby_addr" <<'PY'
import json, socket, sys, time

host, port = sys.argv[1].rsplit(":", 1)
deadline = time.monotonic() + 20
while True:
    with socket.create_connection((host, int(port)), timeout=5) as s:
        s.sendall(b'{"id":0,"verb":"metrics","sections":["cluster"]}\n')
        reply = json.loads(s.makefile().readline())
    applied = (reply.get("metrics", {}).get("cluster", {})
               .get("replication", {}).get("applied_records", 0))
    if applied > 0:
        print(f"cluster smoke: standby applied {applied} replicated records")
        break
    if time.monotonic() > deadline:
        print("cluster smoke: FAILED: standby applied nothing", file=sys.stderr)
        sys.exit(1)
    time.sleep(0.05)
PY
  kill -9 "$shard0_pid"
  # loadgen exits nonzero on any unanswered request or any answer that is
  # not bit-identical to the local engine — that is the zero-wrong-answers
  # gate.
  wait "$load_pid"
  python3 - "$smoke_dir/cluster_load.json" <<'PY'
import json, sys

# The report is the first line; the CSV-written notice follows it.
with open(sys.argv[1]) as f:
    report = json.loads(f.readline())

def fail(msg):
    print(f"cluster smoke: FAILED: {msg}", file=sys.stderr)
    sys.exit(1)

if report.get("errors", 1) != 0:
    fail(f"{report.get('errors')} requests gave up")
if report.get("ok") != report.get("clients", 0) * report.get("requests_per_client", 0):
    fail(f"only {report.get('ok')} requests answered")
if report.get("bit_identical") is not True:
    fail("routed answers were not bit-identical to the local engine")
if not report.get("router_failovers"):
    fail("the router recorded no failover")
print(f"cluster smoke: ok ({report['ok']} answered, "
      f"{report.get('client_retries', 0)} client retries, "
      f"{report['router_failovers']} failover(s), bit-identical)")
PY
  for addr in "$router_addr" "$shard1_addr" "$standby_addr"; do
    python3 - "$addr" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=10) as s:
    s.sendall(b'{"id":0,"verb":"shutdown"}\n')
    ack = json.loads(s.makefile().readline())
if ack.get("shutting_down") is not True:
    print(f"cluster smoke: FAILED: no shutdown ack from {sys.argv[1]}", file=sys.stderr)
    sys.exit(1)
PY
  done
  wait "$router_pid" "$shard1_pid" "$standby_pid"
  wait "$shard0_pid" 2>/dev/null || true
  echo "cluster smoke: ok"
fi

if [ "$stream_smoke" -eq 1 ]; then
  # Streaming-session proof, end to end against the release binaries:
  #   1. boot a plain server on an ephemeral port
  #   2. loadgen --report-stream replays simulator trials over streaming
  #      sessions and, via --assert-stream, requires at least one pushed
  #      detection event and report/event counts that reconcile exactly
  #      with the server's `stream` metrics section (all sessions closed,
  #      none left open)
  #   3. open one more session, leave it open, and send the shutdown verb
  #      through it: the drain must answer through the session channel,
  #      reap the still-open session (accounted as aborted, zero live
  #      tracks), and exit cleanly — no hang, no SIGKILL
  echo "==> stream smoke (loadgen --report-stream + drain with open session)"
  target/release/groupdet serve --addr 127.0.0.1:0 --json \
    >"$smoke_dir/stream_serve.log" &
  stream_pid=$!
  stream_addr=""
  for _ in $(seq 1 100); do
    stream_addr=$(sed -n 's/.*"event":"listening","addr":"\([^"]*\)".*/\1/p' "$smoke_dir/stream_serve.log")
    [ -n "$stream_addr" ] && break
    sleep 0.1
  done
  if [ -z "$stream_addr" ]; then
    echo "stream smoke: server never reported a listening address" >&2
    kill "$stream_pid" 2>/dev/null || true
    exit 1
  fi
  cp results/comm_burst.csv "$smoke_dir/" 2>/dev/null || true
  target/release/loadgen --addr "$stream_addr" --clients 4 --requests 8 \
    --out "$smoke_dir" --report-stream --assert-stream
  python3 - "$stream_addr" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=10) as s:
    f = s.makefile()
    s.sendall(b'{"id":1,"verb":"stream_open","params":{"k":3,"m":10}}\n')
    ack = json.loads(f.readline())
    if ack.get("streaming") is not True:
        print(f"stream smoke: FAILED: stream_open rejected: {ack}", file=sys.stderr)
        sys.exit(1)
    s.sendall(b'{"id":2,"verb":"report","reports":[{"sensor":1,"period":1,"x":500.0,"y":500.0}]}\n')
    if json.loads(f.readline()).get("ingested") != 1:
        print("stream smoke: FAILED: report not ingested", file=sys.stderr)
        sys.exit(1)
    # Shutdown with the session still open: the ack must arrive through
    # the session channel, and the server must reap the session to drain.
    s.sendall(b'{"id":3,"verb":"shutdown"}\n')
    ack = json.loads(f.readline())
    if ack.get("shutting_down") is not True:
        print("stream smoke: FAILED: shutdown not acknowledged in-session", file=sys.stderr)
        sys.exit(1)
print("stream smoke: drain requested with a session open")
PY
  # A hung drain would hang this wait — the gate's hard failure mode.
  wait "$stream_pid"
  echo "stream smoke: ok"
fi

if [ "$chaos" -eq 1 ]; then
  for seed in 1 7 2008; do
    echo "==> chaos suite (GBD_CHAOS_SEED=$seed)"
    GBD_CHAOS_SEED=$seed cargo test -q --test resilience
  done
fi

echo "check.sh: all gates passed"
