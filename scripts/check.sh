#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, and the complete test
# suite. Run before every push; CI mirrors these steps.
#
#   scripts/check.sh           the standard gate
#   scripts/check.sh --chaos   additionally run the fault-injection suite
#                              under three seeds (deterministic per seed)
set -euo pipefail
cd "$(dirname "$0")/.."

chaos=0
for arg in "$@"; do
  case "$arg" in
    --chaos) chaos=1 ;;
    *) echo "unknown argument: $arg (expected --chaos)" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The engine hosts the panic-isolation boundary: an unwrap/expect on a lock
# or join result there would turn one poisoned shard into a crashed batch.
# Non-test engine code must stay free of both (tests opt out via
# cfg_attr(test) in the crate root).
echo "==> cargo clippy -p gbd-engine (unwrap/expect ban)"
cargo clippy -p gbd-engine --all-targets --no-deps -- \
  -D warnings -W clippy::unwrap_used -W clippy::expect_used

echo "==> cargo test -q --workspace"
cargo test -q --workspace

if [ "$chaos" -eq 1 ]; then
  for seed in 1 7 2008; do
    echo "==> chaos suite (GBD_CHAOS_SEED=$seed)"
    GBD_CHAOS_SEED=$seed cargo test -q --test resilience
  done
fi

echo "check.sh: all gates passed"
